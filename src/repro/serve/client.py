"""Async client for the crypto service, plus a closed-loop load
generator.

:class:`CryptoClient` speaks the frame protocol of
:mod:`repro.serve.protocol` over one TCP connection, one request in
flight at a time (request ids are still carried and checked, so a
response mismatch is detected rather than silently mis-attributed).
Every socket await is bounded by a timeout, and transient failures —
connection loss, response timeouts, and the retryable server statuses
(``TIMEOUT`` / ``OVERLOADED`` / ``SHUTTING_DOWN``) — are retried with
capped exponential backoff and jitter, the standard way a fleet of
clients avoids synchronizing its retries into a thundering herd.

:func:`run_load` is the closed-loop load generator behind
``repro-aes loadgen`` and the bench's ``serve`` scenario: N client
coroutines each load a key and issue encrypt requests back-to-back,
and the report carries achieved requests/sec and byte rates.
:func:`run_session_load` is its cluster-aware sibling: M concurrent
*keyed sessions*, each pinning a distinct session id so the gateway
shards them across workers, with ``NO_KEY`` responses (a restarted
worker lost the session's key) absorbed by re-sending ``LOAD_KEY``.
"""

from __future__ import annotations

import asyncio
import hashlib
import itertools
import math
import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.obs.tracing import (
    active_tracer,
    format_span_id,
    new_span_id,
    trace_record,
)
from repro.serve.protocol import (
    KEY_BYTES,
    RETRYABLE_STATUSES,
    Frame,
    FrameError,
    Mode,
    Op,
    Status,
    read_frame,
    write_frame,
)


class RequestFailed(ConnectionError):
    """Every retry attempt failed at the transport level."""


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with jitter.

    Attempt *n* (0-based) sleeps ``base_delay * 2**n`` seconds,
    capped at ``max_delay``, then scaled down by up to ``jitter``
    (a fraction in [0, 1)) chosen uniformly at random — so two
    clients that fail together do not retry together.
    """

    attempts: int = 4
    base_delay: float = 0.05
    max_delay: float = 2.0
    jitter: float = 0.5

    def delay(self, attempt: int, rng: random.Random) -> float:
        """The backoff before retry number ``attempt`` (0-based)."""
        capped = min(self.max_delay,
                     self.base_delay * (2.0 ** attempt))
        return capped * (1.0 - self.jitter * rng.random())


class CryptoClient:
    """One connection to a :class:`~repro.serve.server.CryptoServer`.

    Use as an async context manager, or call :meth:`connect` /
    :meth:`close` explicitly.  ``rng`` seeds the backoff jitter only
    (determinism for tests); it is never used for key material.
    """

    def __init__(self, host: str, port: int,
                 connect_timeout: float = 5.0,
                 request_timeout: float = 30.0,
                 retry: Optional[RetryPolicy] = None,
                 rng: Optional[random.Random] = None,
                 session_id: int = 0) -> None:
        self.host = host
        self.port = port
        self.connect_timeout = connect_timeout
        self.request_timeout = request_timeout
        #: Carried in every frame's header.  Zero (the default) means
        #: anonymous; against a cluster gateway a nonzero id is what
        #: pins this client's requests to one worker shard.
        self.session_id = session_id
        self.retry = retry or RetryPolicy()
        self._rng = rng or random.Random()
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._request_ids = itertools.count(1)
        # Whether to carry trace context on the wire (only attempted
        # while tracing is enabled).  Flipped off for the connection's
        # lifetime the first time a peer rejects the extension, so a
        # v2 client keeps working against a v1 server.
        self._trace_wire = True

    async def __aenter__(self) -> "CryptoClient":
        await self.connect()
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()

    async def connect(self) -> None:
        """Open (or re-open) the connection, bounded by
        ``connect_timeout``."""
        await self.close()
        self._reader, self._writer = await asyncio.wait_for(
            asyncio.open_connection(self.host, self.port),
            self.connect_timeout,
        )

    async def close(self) -> None:
        """Close the connection; safe to call when not connected."""
        writer, self._reader, self._writer = self._writer, None, None
        if writer is None:
            return
        writer.close()
        try:
            await asyncio.wait_for(writer.wait_closed(), 5.0)
        except (asyncio.TimeoutError, ConnectionError):
            pass

    @property
    def connected(self) -> bool:
        """Whether a transport is currently open."""
        return self._writer is not None

    # -------------------------------------------------------- requests
    async def request(self, op: Op, mode: Mode = Mode.RAW,
                      payload: bytes = b"") -> Frame:
        """Send one request; return the server's response frame.

        Retries per the :class:`RetryPolicy` on transport failures
        and on :data:`RETRYABLE_STATUSES`.  When retries are
        exhausted the last error *response* is returned as-is (the
        caller inspects ``frame.status``); a transport-level
        exhaustion raises :class:`RequestFailed`.
        """
        last_error: Optional[Exception] = None
        last_response: Optional[Frame] = None
        for attempt in range(max(1, self.retry.attempts)):
            if attempt:
                await asyncio.sleep(
                    self.retry.delay(attempt - 1, self._rng)
                )
            try:
                response = await self._roundtrip(op, mode, payload)
            except (ConnectionError, asyncio.TimeoutError,
                    asyncio.IncompleteReadError, FrameError) as exc:
                last_error = exc
                await self.close()
                continue
            last_response = response
            if response.status not in RETRYABLE_STATUSES:
                return response
        if last_response is not None:
            return last_response
        raise RequestFailed(
            f"{op.name} failed after {self.retry.attempts} "
            f"attempt(s): {last_error!r}"
        )

    async def _roundtrip(self, op: Op, mode: Mode,
                         payload: bytes) -> Frame:
        if not self.connected:
            await self.connect()
        assert self._reader is not None and self._writer is not None
        request_id = next(self._request_ids)
        trace_id = span_id = 0
        if self._trace_wire and active_tracer() is not None:
            trace_id = new_span_id()
            span_id = new_span_id()
        frame = Frame(op=op, mode=mode,
                      session_id=self.session_id,
                      request_id=request_id, payload=payload,
                      trace_id=trace_id, parent_span_id=span_id)
        start = time.perf_counter()
        await write_frame(self._writer, frame,
                          timeout=self.request_timeout)
        response = await read_frame(self._reader,
                                    timeout=self.request_timeout)
        if trace_id:
            # The client half of the cross-process pair: the server's
            # serve.request span carries the same trace_id.
            trace_record("request", start, time.perf_counter(),
                         category="client", op=op.name.lower(),
                         trace_id=format_span_id(trace_id),
                         span_id=format_span_id(span_id))
        if response is None:
            raise ConnectionError("server closed the connection")
        if (trace_id and response.status is Status.BAD_FRAME
                and response.request_id == 0):
            # A v1 peer rejects the traced frame before decoding the
            # header, so its BAD_FRAME reply carries request id 0.
            # Downgrade for this connection and let the retry loop
            # resend the request untraced.
            self._trace_wire = False
            raise FrameError(
                "peer declined the trace extension; "
                "retrying without it",
                recoverable=False,
            )
        if response.request_id != request_id:
            raise FrameError(
                f"response for request {response.request_id}, "
                f"expected {request_id}",
                recoverable=False,
            )
        return response

    # ---------------------------------------------------- conveniences
    async def load_key(self, key: bytes) -> Frame:
        """Install the session key server-side (LOAD_KEY)."""
        return await self.request(Op.LOAD_KEY, payload=bytes(key))

    async def encrypt(self, mode: Mode, payload: bytes) -> Frame:
        """ENCRYPT under ``mode`` (payload per the mode convention)."""
        return await self.request(Op.ENCRYPT, mode, payload)

    async def decrypt(self, mode: Mode, payload: bytes) -> Frame:
        """DECRYPT under ``mode`` (payload per the mode convention)."""
        return await self.request(Op.DECRYPT, mode, payload)

    async def ping(self, payload: bytes = b"") -> Frame:
        """Round-trip an echo frame."""
        return await self.request(Op.PING, payload=payload)

    async def shutdown(self) -> Frame:
        """Ask the server to drain and stop."""
        return await self.request(Op.SHUTDOWN)


# ------------------------------------------------------------ loadgen
@dataclass
class LoadReport:
    """What one :func:`run_load` run achieved."""

    clients: int
    requests: int
    errors: int
    seconds: float
    bytes_out: int
    bytes_in: int
    mode: str
    payload_bytes: int
    statuses: Dict[str, int] = field(default_factory=dict)
    #: Client-observed per-request latency percentiles in seconds
    #: (keys ``p50_s``/``p95_s``/``p99_s``/``max_s``); empty when no
    #: request completed a round-trip.
    latency: Dict[str, float] = field(default_factory=dict)

    @property
    def requests_per_s(self) -> float:
        """Completed requests per wall-clock second."""
        if self.seconds <= 0:
            return 0.0
        return self.requests / self.seconds

    @property
    def mb_per_s(self) -> float:
        """Request-payload megabytes pushed per second."""
        if self.seconds <= 0:
            return 0.0
        return self.bytes_out / self.seconds / (1024 * 1024)

    def render(self) -> str:
        """One human-readable summary block."""
        lines = [
            f"loadgen: {self.clients} client(s) x "
            f"{self.requests // max(1, self.clients)} request(s), "
            f"mode={self.mode}, payload={self.payload_bytes} B",
            f"  completed : {self.requests} ok, {self.errors} error(s)"
            f" in {self.seconds:.3f}s",
            f"  throughput: {self.requests_per_s:,.1f} req/s, "
            f"{self.mb_per_s:.2f} MB/s out",
        ]
        if self.statuses:
            status_text = ", ".join(
                f"{name}={count}"
                for name, count in sorted(self.statuses.items())
            )
            lines.append(f"  statuses  : {status_text}")
        if self.latency:
            lines.append(
                "  latency   : "
                + ", ".join(
                    f"{key[:-2]}={self.latency[key] * 1000:.2f}ms"
                    for key in ("p50_s", "p95_s", "p99_s", "max_s")
                    if key in self.latency
                )
                + " (client-observed)"
            )
        return "\n".join(lines)


def latency_percentiles(samples: List[float]) -> Dict[str, float]:
    """Nearest-rank p50/p95/p99 plus max of a latency sample list.

    Exact (not estimated — the loadgen holds every sample), so the
    client side of the loadgen report is ground truth against which
    the server's windowed estimates can be judged.
    """
    if not samples:
        return {}
    ordered = sorted(samples)
    count = len(ordered)

    def rank(q: float) -> float:
        return ordered[min(count - 1,
                           max(0, math.ceil(q * count) - 1))]

    return {
        "p50_s": rank(0.50),
        "p95_s": rank(0.95),
        "p99_s": rank(0.99),
        "max_s": ordered[-1],
    }


def _build_payload(mode: Mode, payload_bytes: int,
                   seed: int) -> bytes:
    """The deterministic request payload both loadgens share."""
    if mode is Mode.ECB and payload_bytes < 16:
        raise ValueError(
            "ECB needs payload_bytes >= 16 (one full block)"
        )
    prefix_rng = random.Random(seed)
    nonce = prefix_rng.randbytes(8)
    body = prefix_rng.randbytes(payload_bytes)
    if mode is Mode.ECB:
        # Truncate to whole blocks so every request is well-formed.
        return body[:(len(body) // 16) * 16]
    if mode is Mode.CTR:
        return nonce + body
    if mode is Mode.GCM:
        return prefix_rng.randbytes(12) + body
    raise ValueError(f"loadgen mode must be a cipher mode, "
                     f"not {mode.name}")


async def run_load(host: str, port: int, key: bytes,
                   clients: int = 8, requests: int = 32,
                   mode: Mode = Mode.CTR,
                   payload_bytes: int = 1024,
                   seed: int = 2003,
                   shutdown: bool = False,
                   retry: Optional[RetryPolicy] = None) -> LoadReport:
    """Closed-loop load: ``clients`` coroutines, ``requests`` each.

    Every client connects, installs ``key``, then issues ENCRYPT
    requests back-to-back (closed loop: the next request leaves when
    the previous response lands).  Payloads are deterministic from
    ``seed`` so runs compare like against like.  With ``shutdown``
    set, one final SHUTDOWN frame asks the server to drain and stop
    — how the CI smoke ends a serve process cleanly.
    """
    if clients < 1 or requests < 1:
        raise ValueError("clients and requests must be >= 1")
    payload = _build_payload(mode, payload_bytes, seed)

    counts: Dict[str, int] = {"ok": 0, "errors": 0,
                              "bytes_out": 0, "bytes_in": 0}
    statuses: Dict[str, int] = {}
    latencies: List[float] = []

    async def one_client(index: int) -> None:
        client = CryptoClient(
            host, port, retry=retry,
            rng=random.Random(seed * 1000 + index),
        )
        answered = 0
        try:
            await client.connect()
            response = await client.load_key(key)
            if response.status is not Status.OK:
                counts["errors"] += requests
                return
            for _ in range(requests):
                sent = time.perf_counter()
                response = await client.encrypt(mode, payload)
                latencies.append(time.perf_counter() - sent)
                answered += 1
                name = response.status.name.lower()
                statuses[name] = statuses.get(name, 0) + 1
                if response.status is Status.OK:
                    counts["ok"] += 1
                    counts["bytes_out"] += len(payload)
                    counts["bytes_in"] += len(response.payload)
                else:
                    counts["errors"] += 1
        except (RequestFailed, ConnectionError,
                asyncio.TimeoutError):
            # A dead client answers nothing more: every request it
            # still owed the run failed, and the report must say so
            # (an all-errors run has to exit nonzero in CI).
            counts["errors"] += requests - answered
        finally:
            await client.close()

    start = time.perf_counter()
    await asyncio.gather(*(one_client(i) for i in range(clients)))
    seconds = time.perf_counter() - start

    if shutdown:
        closer = CryptoClient(host, port, retry=RetryPolicy(attempts=1))
        try:
            await closer.shutdown()
        except (RequestFailed, ConnectionError, asyncio.TimeoutError):
            pass
        finally:
            await closer.close()

    return LoadReport(
        clients=clients,
        requests=counts["ok"],
        errors=counts["errors"],
        seconds=seconds,
        bytes_out=counts["bytes_out"],
        bytes_in=counts["bytes_in"],
        mode=mode.name.lower(),
        payload_bytes=payload_bytes,
        statuses=statuses,
        latency=latency_percentiles(latencies),
    )


def derive_session_key(base_key: bytes, session_id: int) -> bytes:
    """A per-session AES key from one base key and a session id.

    ``blake2b`` keyed-derivation (not a seeded RNG — key material
    never comes from ``random``): deterministic given the base key,
    so a session that must re-install its key after a worker restart
    derives the same bytes, and distinct session ids give
    independent keys.
    """
    return hashlib.blake2b(
        base_key,
        digest_size=KEY_BYTES,
        salt=session_id.to_bytes(8, "big"),
        person=b"repro-session",
    ).digest()


async def run_session_load(host: str, port: int, base_key: bytes,
                           sessions: int = 8, requests: int = 32,
                           mode: Mode = Mode.CTR,
                           payload_bytes: int = 1024,
                           seed: int = 2003,
                           retry: Optional[RetryPolicy] = None,
                           ) -> LoadReport:
    """Cluster closed loop: ``sessions`` concurrent keyed sessions.

    Each session is one client pinning a distinct nonzero session id
    — against a cluster gateway that is what consistent-hash-routes
    it to one worker shard — under its own derived key.  Two failure
    modes beyond :func:`run_load` are absorbed here, because they are
    normal cluster weather rather than errors: transport drops and
    retryable statuses go through the client's backoff as usual, and
    a ``NO_KEY`` response (the shard restarted and lost the session's
    key) re-sends ``LOAD_KEY`` and retries the request.
    """
    if sessions < 1 or requests < 1:
        raise ValueError("sessions and requests must be >= 1")
    payload = _build_payload(mode, payload_bytes, seed)

    counts: Dict[str, int] = {"ok": 0, "errors": 0,
                              "bytes_out": 0, "bytes_in": 0}
    statuses: Dict[str, int] = {}
    latencies: List[float] = []

    async def one_session(index: int) -> None:
        session_id = index + 1
        session_key = derive_session_key(base_key, session_id)
        client = CryptoClient(
            host, port, retry=retry, session_id=session_id,
            rng=random.Random(seed * 1000 + index),
        )
        answered = 0
        reloads = 0
        try:
            await client.connect()
            response = await client.load_key(session_key)
            if response.status is not Status.OK:
                counts["errors"] += requests
                return
            done = 0
            while done < requests:
                sent = time.perf_counter()
                response = await client.encrypt(mode, payload)
                if (response.status is Status.NO_KEY
                        and reloads < 2 * sessions + 4):
                    # The shard lost this session's key (worker
                    # restart): re-install and retry the request
                    # without counting it — bounded, so a server
                    # that *never* keeps keys still terminates.
                    reloads += 1
                    reload = await client.load_key(session_key)
                    if reload.status is Status.OK:
                        continue
                latencies.append(time.perf_counter() - sent)
                done += 1
                answered += 1
                name = response.status.name.lower()
                statuses[name] = statuses.get(name, 0) + 1
                if response.status is Status.OK:
                    counts["ok"] += 1
                    counts["bytes_out"] += len(payload)
                    counts["bytes_in"] += len(response.payload)
                else:
                    counts["errors"] += 1
        except (RequestFailed, ConnectionError,
                asyncio.TimeoutError):
            counts["errors"] += requests - answered
        finally:
            await client.close()

    start = time.perf_counter()
    await asyncio.gather(*(one_session(i) for i in range(sessions)))
    seconds = time.perf_counter() - start

    return LoadReport(
        clients=sessions,
        requests=counts["ok"],
        errors=counts["errors"],
        seconds=seconds,
        bytes_out=counts["bytes_out"],
        bytes_in=counts["bytes_in"],
        mode=mode.name.lower(),
        payload_bytes=payload_bytes,
        statuses=statuses,
        latency=latency_percentiles(latencies),
    )


__all__ = ["CryptoClient", "LoadReport", "RequestFailed",
           "RetryPolicy", "derive_session_key",
           "latency_percentiles", "run_load", "run_session_load"]
