"""Bench harness: equivalence gate, report schema, persisted JSON."""

import json

import pytest

from repro.perf.backends import Backend, BaselineBackend
from repro.perf.bench import (
    SCHEMA,
    cross_check,
    host_fingerprint,
    render_report,
    run_bench,
    write_report,
)
from repro.perf.engine import BackendMismatch


class _CorruptBackend(Backend):
    """Flips the last bit of otherwise-correct ciphertext."""

    name = "corrupt"

    def __init__(self):
        self._inner = BaselineBackend()

    def encrypt_blocks(self, key, data):
        out = self._inner.encrypt_blocks(key, data)
        if not out:
            return out
        return out[:-1] + bytes([out[-1] ^ 1])


class TestCrossCheck:
    def test_all_registered_backends_agree(self):
        summary = cross_check(corpus_blocks=8)
        assert summary["mismatches"] == 0
        assert "sliced" in summary["backends"]
        assert sorted(summary["primitives"]) == \
            ["ctr", "ecb", "gctr"]

    def test_broken_backend_is_caught(self):
        with pytest.raises(BackendMismatch, match="corrupt"):
            cross_check({"corrupt": _CorruptBackend()},
                        corpus_blocks=4)


class TestRunBench:
    def test_report_schema_and_speedups(self, tmp_path):
        report = run_bench(quick=True, sizes=[256], reps=1,
                           backend_names=["baseline", "sliced"],
                           corpus_blocks=4, cluster=False)
        assert report["schema"] == SCHEMA
        assert report["quick"] is True
        assert report["equivalence"]["mismatches"] == 0
        rows = report["workloads"]
        # 2 backends x 2 modes x 1 size, plus the serial CBC row.
        assert len(rows) == 5
        for row in rows:
            assert row["measured_blocks"] <= row["blocks"]
            assert row["blocks_per_s"] >= 0
        baseline_rows = [r for r in rows
                        if r["backend"] == "baseline"
                        and not r["chained"]]
        assert all(r["speedup_vs_baseline"] == pytest.approx(1.0)
                   for r in baseline_rows)
        cbc_rows = [r for r in rows if r["chained"]]
        assert len(cbc_rows) == 1
        assert cbc_rows[0]["mode"] == "cbc"

        out = write_report(report, tmp_path / "bench.json")
        loaded = json.loads(out.read_text())
        assert loaded["schema"] == SCHEMA
        assert len(loaded["workloads"]) == 5

    def test_baseline_always_included(self):
        report = run_bench(quick=True, sizes=[128], reps=1,
                           backend_names=["ttable"],
                           corpus_blocks=4, cluster=False)
        backends = {row["backend"] for row in report["workloads"]}
        assert {"baseline", "ttable"} <= backends

    def test_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown backends"):
            run_bench(quick=True, backend_names=["warp"])

    def test_rejects_unaligned_size(self):
        with pytest.raises(ValueError, match="multiples"):
            run_bench(quick=True, sizes=[100],
                      backend_names=["sliced"], corpus_blocks=4,
                      cluster=False)

    def test_render_is_textual(self):
        report = run_bench(quick=True, sizes=[128], reps=1,
                           backend_names=["baseline"],
                           corpus_blocks=4, cluster=False)
        text = render_report(report)
        assert "software throughput" in text
        assert "baseline" in text
        assert "0 mismatch(es)" in text
        assert "serve:" in text and "req/s" in text


class TestServeScenario:
    def test_bench_records_loopback_service_rates(self):
        from repro.perf.bench import serve_scenario

        row = serve_scenario(quick=True, clients=2, requests=3,
                             payload_bytes=256)
        assert row["clients"] == 2
        assert row["requests_per_client"] == 3
        assert row["mode"] == "ctr"
        assert row["requests"] == 6
        assert row["errors"] == 0
        assert row["requests_per_s"] > 0
        assert row["seconds"] > 0
        # v5: the latency-percentile section rides along.
        latency = row["latency"]
        assert latency is not None
        assert set(latency) == {"p50_s", "p95_s", "p99_s", "max_s"}
        assert 0 < latency["p50_s"] <= latency["p95_s"] \
            <= latency["p99_s"] <= latency["max_s"]

    def test_run_bench_embeds_serve_section(self):
        report = run_bench(quick=True, sizes=[128], reps=1,
                           backend_names=["baseline"],
                           corpus_blocks=4, cluster=False)
        serve = report["serve"]
        assert serve is not None
        assert serve["errors"] == 0
        assert serve["requests"] == \
            serve["clients"] * serve["requests_per_client"]

    def test_serve_section_can_be_disabled(self):
        report = run_bench(quick=True, sizes=[128], reps=1,
                           backend_names=["baseline"],
                           corpus_blocks=4, serve=False, cluster=False)
        assert report["serve"] is None
        text = render_report(report)
        assert "serve:" not in text


class TestHostFingerprint:
    def test_fields(self):
        host = host_fingerprint()
        assert set(host) >= {"platform", "machine", "python",
                             "cpu_count", "numpy"}


class TestProvenance:
    def test_report_carries_git_rev_and_obs(self):
        report = run_bench(quick=True, sizes=[128], reps=1,
                           backend_names=["baseline"],
                           corpus_blocks=4, cluster=False)
        assert report["schema"] == SCHEMA
        assert isinstance(report["git_rev"], str)
        assert report["git_rev"]  # never empty: hash or "unknown"
        assert isinstance(report["obs"], dict)
        assert "repro_engine_ops_total" in report["obs"]

    def test_git_revision_in_a_repo_is_a_hash(self):
        from pathlib import Path

        from repro.perf.bench import git_revision

        rev = git_revision()
        root = Path(__file__).resolve().parents[2]
        if (root / ".git").exists():
            assert len(rev) == 40
            int(rev, 16)  # hex
        else:
            assert rev == "unknown"

    def test_git_revision_outside_a_repo_is_unknown(self, tmp_path):
        from repro.perf.bench import git_revision

        assert git_revision(root=tmp_path) == "unknown"


class TestLoadReport:
    def test_v2_round_trip(self, tmp_path):
        from repro.perf.bench import load_report

        report = run_bench(quick=True, sizes=[128], reps=1,
                           backend_names=["baseline"],
                           corpus_blocks=4, cluster=False)
        out = write_report(report, tmp_path / "bench.json")
        loaded = load_report(out)
        assert loaded["schema"] == SCHEMA
        assert loaded["git_rev"] == report["git_rev"]

    def test_v1_reader_path_normalizes(self, tmp_path):
        from repro.perf.bench import SCHEMA_V1, load_report

        v1 = {
            "schema": SCHEMA_V1,
            "created_unix": 1754000000,
            "quick": True,
            "workers": 1,
            "host": {"platform": "x", "python": "3.11"},
            "equivalence": {"mismatches": 0},
            "workloads": [],
        }
        path = tmp_path / "old.json"
        path.write_text(json.dumps(v1))
        loaded = load_report(path)
        assert loaded["git_rev"] == "unknown"
        assert loaded["obs"] == {}
        assert loaded["workloads"] == []
        assert loaded["serve"] is None

    def test_v2_reader_path_normalizes_serve(self, tmp_path):
        from repro.perf.bench import SCHEMA_V2, load_report

        v2 = {
            "schema": SCHEMA_V2,
            "created_unix": 1754000000,
            "quick": True,
            "workers": 1,
            "git_rev": "abc123",
            "host": {"platform": "x", "python": "3.11"},
            "equivalence": {"mismatches": 0},
            "workloads": [],
            "obs": {},
        }
        path = tmp_path / "v2.json"
        path.write_text(json.dumps(v2))
        loaded = load_report(path)
        assert loaded["git_rev"] == "abc123"
        assert loaded["serve"] is None

    def test_unknown_schema_rejected(self, tmp_path):
        from repro.perf.bench import load_report

        path = tmp_path / "weird.json"
        path.write_text(json.dumps({"schema": "other/v9"}))
        with pytest.raises(ValueError, match="unrecognized"):
            load_report(path)

    def test_v3_reader_path_normalizes_ghash(self, tmp_path):
        from repro.perf.bench import SCHEMA_V3, load_report

        v3 = {
            "schema": SCHEMA_V3,
            "created_unix": 1754000000,
            "quick": True,
            "workers": 1,
            "git_rev": "abc123",
            "host": {"platform": "x", "python": "3.11"},
            "equivalence": {"mismatches": 0},
            "workloads": [],
            "obs": {},
            "serve": None,
        }
        path = tmp_path / "v3.json"
        path.write_text(json.dumps(v3))
        loaded = load_report(path)
        assert loaded["ghash"] is None
        assert loaded["serve"] is None

    def test_v4_reader_path_normalizes_serve_latency(self, tmp_path):
        from repro.perf.bench import SCHEMA_V4, load_report

        v4 = {
            "schema": SCHEMA_V4,
            "created_unix": 1754000000,
            "quick": True,
            "workers": 1,
            "git_rev": "abc123",
            "host": {"platform": "x", "python": "3.11"},
            "equivalence": {"mismatches": 0,
                            "ghash_mismatches": 0},
            "workloads": [],
            "obs": {},
            "ghash": None,
            "serve": {
                "clients": 4, "requests_per_client": 8,
                "mode": "ctr", "payload_bytes": 4096,
                "requests": 32, "errors": 0, "seconds": 0.1,
                "requests_per_s": 320.0, "mb_per_s": 12.5,
            },
        }
        path = tmp_path / "v4.json"
        path.write_text(json.dumps(v4))
        loaded = load_report(path)
        # v4 serve rows predate the latency section: normalized in.
        assert loaded["serve"]["latency"] is None
        assert loaded["serve"]["requests_per_s"] == 320.0

    def test_older_readers_leave_absent_serve_alone(self, tmp_path):
        from repro.perf.bench import SCHEMA_V2, load_report

        v2 = {
            "schema": SCHEMA_V2,
            "created_unix": 1754000000,
            "quick": True,
            "workers": 1,
            "git_rev": "abc123",
            "host": {"platform": "x", "python": "3.11"},
            "equivalence": {"mismatches": 0},
            "workloads": [],
            "obs": {},
        }
        path = tmp_path / "v2-noserve.json"
        path.write_text(json.dumps(v2))
        loaded = load_report(path)
        assert loaded["serve"] is None  # not a dict with latency


class TestGhashSection:
    def test_cross_check_ghash_gate(self):
        from repro.perf.bench import cross_check_ghash

        summary = cross_check_ghash()
        assert summary["ghash_mismatches"] == 0
        assert summary["ghash_cases"] > 0
        assert "bitwise" in summary["ghash_providers"]
        assert "table" in summary["ghash_providers"]

    def test_run_bench_embeds_ghash_section(self):
        report = run_bench(quick=True, sizes=[128], reps=1,
                           backend_names=["baseline"],
                           corpus_blocks=4, cluster=False,
                           ghash_names=["bitwise", "table"])
        section = report["ghash"]
        assert section is not None
        assert "bitwise" in section["providers"]
        for row in section["workloads"]:
            assert row["kind"] in {"digest", "gcm"}
            assert row["blocks_per_s"] >= 0
            assert row["measured_blocks"] <= row["blocks"]
        eq = report["equivalence"]
        assert eq["ghash_mismatches"] == 0
        assert eq["ghash_cases"] > 0
        # Bitwise is the denominator: its own speedup is exactly 1.
        bitwise = [r for r in section["workloads"]
                   if r["provider"] == "bitwise"]
        assert all(r["speedup_vs_bitwise"] == pytest.approx(1.0)
                   for r in bitwise)
        text = render_report(report)
        assert "ghash" in text
        assert "ghash equivalence" in text

    def test_ghash_section_can_be_disabled(self):
        report = run_bench(quick=True, sizes=[128], reps=1,
                           backend_names=["baseline"],
                           corpus_blocks=4, ghash=False, cluster=False)
        assert report["ghash"] is None
        # The equivalence gate still runs even without timings.
        assert report["equivalence"]["ghash_mismatches"] == 0

    def test_rejects_unknown_ghash_provider(self):
        with pytest.raises(ValueError, match="unknown ghash"):
            run_bench(quick=True, sizes=[128], reps=1,
                      backend_names=["baseline"], corpus_blocks=4,
                      ghash_names=["quantum"])


class TestClusterScenario:
    def test_rows_and_speedup_vs_single(self):
        from repro.perf.bench import cluster_scenario

        section = cluster_scenario(quick=True, worker_counts=(1, 2),
                                   sessions=2, requests=3,
                                   payload_bytes=256)
        assert section["mode"] == "ctr"
        assert section["sessions"] == 2
        assert section["requests_per_session"] == 3
        rows = section["rows"]
        assert [row["workers"] for row in rows] == [1, 2]
        for row in rows:
            assert row["errors"] == 0
            assert row["requests"] == 6
            assert row["requests_per_s"] > 0
        assert rows[0]["speedup_vs_single"] == pytest.approx(1.0)
        assert rows[1]["speedup_vs_single"] is not None

    def test_rejects_bad_worker_counts(self):
        from repro.perf.bench import cluster_scenario

        with pytest.raises(ValueError, match="worker counts"):
            cluster_scenario(quick=True, worker_counts=(0,))

    def test_run_bench_embeds_and_renders_cluster_section(self):
        report = run_bench(quick=True, sizes=[128], reps=1,
                           backend_names=["baseline"],
                           corpus_blocks=4, serve=False,
                           ghash=False)
        section = report["cluster"]
        assert section is not None
        assert [row["workers"] for row in section["rows"]] == [1, 2]
        assert all(row["errors"] == 0 for row in section["rows"])
        text = render_report(report)
        assert "cluster:" in text
        assert "worker(s):" in text
        assert "vs single" in text

    def test_cluster_section_can_be_disabled(self):
        report = run_bench(quick=True, sizes=[128], reps=1,
                           backend_names=["baseline"],
                           corpus_blocks=4, serve=False,
                           ghash=False, cluster=False)
        assert report["cluster"] is None
        assert "cluster:" not in render_report(report)


class TestLoadReportV6:
    def test_v5_reader_path_normalizes_cluster(self, tmp_path):
        from repro.perf.bench import SCHEMA_V5, load_report

        v5 = {
            "schema": SCHEMA_V5,
            "created_unix": 1754000000,
            "quick": True,
            "workers": 1,
            "git_rev": "abc123",
            "host": {"platform": "x", "python": "3.11"},
            "equivalence": {"mismatches": 0,
                            "ghash_mismatches": 0},
            "workloads": [],
            "obs": {},
            "ghash": None,
            "serve": {
                "clients": 4, "requests_per_client": 8,
                "mode": "ctr", "payload_bytes": 4096,
                "requests": 32, "errors": 0, "seconds": 0.1,
                "requests_per_s": 320.0, "mb_per_s": 12.5,
                "latency": {"p50_s": 0.01, "p95_s": 0.02,
                            "p99_s": 0.03, "max_s": 0.04},
            },
        }
        path = tmp_path / "v5.json"
        path.write_text(json.dumps(v5))
        loaded = load_report(path)
        # v5 predates the cluster section: normalized to None, and
        # the sections it did carry pass through untouched.
        assert loaded["cluster"] is None
        assert loaded["serve"]["latency"]["p50_s"] == 0.01

    def test_every_older_schema_normalizes_cluster(self, tmp_path):
        from repro.perf.bench import (
            SCHEMA_V1,
            SCHEMA_V2,
            SCHEMA_V3,
            SCHEMA_V4,
            load_report,
        )

        base = {
            "created_unix": 1754000000,
            "quick": True,
            "workers": 1,
            "git_rev": "abc123",
            "host": {"platform": "x", "python": "3.11"},
            "equivalence": {"mismatches": 0},
            "workloads": [],
            "obs": {},
        }
        for schema in (SCHEMA_V1, SCHEMA_V2, SCHEMA_V3, SCHEMA_V4):
            path = tmp_path / f"{schema.rsplit('/', 1)[1]}.json"
            path.write_text(json.dumps({**base, "schema": schema}))
            loaded = load_report(path)
            assert loaded["cluster"] is None, schema
