"""BatchEngine primitives vs serial references, sharding, validation."""

import random

import pytest

from repro.aes.cipher import AES128
from repro.perf.backends import BaselineBackend
from repro.perf.engine import (
    MIN_SHARD_BLOCKS,
    BatchEngine,
    default_engine,
)

KEY = bytes(range(16))
NONCE = bytes(range(8))


def serial_ecb(key, data):
    aes = AES128(key)
    return b"".join(aes.encrypt_block(data[i:i + 16])
                    for i in range(0, len(data), 16))


def serial_ctr(key, nonce, data, initial=0):
    aes = AES128(key)
    out = bytearray()
    for index in range(0, len(data), 16):
        counter = (initial + index // 16).to_bytes(8, "big")
        stream = aes.encrypt_block(nonce + counter)
        out.extend(c ^ s for c, s in
                   zip(data[index:index + 16], stream))
    return bytes(out)


def serial_gctr(key, icb, data):
    aes = AES128(key)
    head, start = icb[:12], int.from_bytes(icb[12:], "big")
    out = bytearray()
    for index in range(0, len(data), 16):
        counter = (start + index // 16) & 0xFFFFFFFF
        stream = aes.encrypt_block(head + counter.to_bytes(4, "big"))
        out.extend(c ^ s for c, s in
                   zip(data[index:index + 16], stream))
    return bytes(out)


class TestPrimitives:
    def test_ecb_matches_serial(self):
        data = random.Random(1).randbytes(16 * 20)
        assert BatchEngine().xcrypt_ecb(KEY, data) == \
            serial_ecb(KEY, data)

    def test_keystream_matches_serial(self):
        engine = BatchEngine()
        stream = engine.keystream(KEY, NONCE, 5, initial=3)
        assert stream == serial_ctr(KEY, NONCE, bytes(5 * 16), 3)

    def test_ctr_roundtrip_and_reference(self):
        data = random.Random(2).randbytes(100)  # ragged tail
        engine = BatchEngine()
        ct = engine.xcrypt_ctr(KEY, NONCE, data)
        assert ct == serial_ctr(KEY, NONCE, data)
        assert engine.xcrypt_ctr(KEY, NONCE, ct) == data

    def test_gctr_matches_serial(self):
        data = random.Random(3).randbytes(77)
        icb = bytes(range(16))
        assert BatchEngine().gctr(KEY, icb, data) == \
            serial_gctr(KEY, icb, data)

    def test_gctr_counter_wrap(self):
        # ICB one block short of 2^32: block 2 wraps to counter 0.
        icb = bytes(12) + (0xFFFFFFFF).to_bytes(4, "big")
        data = bytes(16 * 3)
        assert BatchEngine().gctr(KEY, icb, data) == \
            serial_gctr(KEY, icb, data)

    def test_empty_inputs(self):
        engine = BatchEngine()
        assert engine.xcrypt_ecb(KEY, b"") == b""
        assert engine.xcrypt_ctr(KEY, NONCE, b"") == b""
        assert engine.keystream(KEY, NONCE, 0) == b""
        assert engine.gctr(KEY, bytes(16), b"") == b""


class TestValidation:
    def test_bad_key_length(self):
        with pytest.raises(ValueError):
            BatchEngine().xcrypt_ecb(bytes(8), bytes(16))

    def test_unaligned_ecb(self):
        with pytest.raises(ValueError):
            BatchEngine().xcrypt_ecb(KEY, bytes(15))

    def test_bad_nonce_length(self):
        with pytest.raises(ValueError):
            BatchEngine().keystream(KEY, bytes(7), 1)

    def test_negative_blocks(self):
        with pytest.raises(ValueError):
            BatchEngine().keystream(KEY, NONCE, -1)

    def test_bad_icb_length(self):
        with pytest.raises(ValueError):
            BatchEngine().gctr(KEY, bytes(15), bytes(16))


class TestSharding:
    def test_sharded_equals_serial(self):
        data = random.Random(4).randbytes(16 * 4 * MIN_SHARD_BLOCKS)
        serial = BatchEngine(workers=1)
        sharded = BatchEngine(workers=4)
        assert sharded.xcrypt_ecb(KEY, data) == \
            serial.xcrypt_ecb(KEY, data)
        assert sharded.xcrypt_ctr(KEY, NONCE, data) == \
            serial.xcrypt_ctr(KEY, NONCE, data)

    def test_small_buffers_stay_single_shard(self):
        engine = BatchEngine(workers=8)
        data = bytes(16 * (2 * MIN_SHARD_BLOCKS - 1))
        assert engine._shards(data) == [data]

    def test_shard_plan_is_contiguous(self):
        engine = BatchEngine(workers=4)
        data = bytes(16 * 4 * MIN_SHARD_BLOCKS)
        shards = engine._shards(data)
        assert len(shards) > 1
        assert b"".join(shards) == data
        assert all(len(s) % 16 == 0 for s in shards)

    def test_workers_floor(self):
        assert BatchEngine(workers=0).workers == 1


class TestConstruction:
    def test_backend_by_name(self):
        assert BatchEngine("baseline").backend.name == "baseline"

    def test_backend_instance(self):
        backend = BaselineBackend()
        assert BatchEngine(backend).backend is backend

    def test_default_engine_is_singleton(self):
        assert default_engine() is default_engine()


class TestEffectiveWorkers:
    """The worker clamp: the executor is sized to the shard plan,
    never the configured ceiling, and the engine reports what ran."""

    def test_defaults_to_one(self):
        assert BatchEngine().effective_workers == 1

    def test_small_buffer_clamps_to_one(self):
        engine = BatchEngine(workers=8)
        engine.xcrypt_ecb(KEY, bytes(16 * 4))
        assert engine.effective_workers == 1

    def test_large_buffer_uses_configured_workers(self):
        engine = BatchEngine(workers=4)
        engine.xcrypt_ecb(KEY, bytes(16 * 4 * MIN_SHARD_BLOCKS))
        assert engine.effective_workers == 4

    def test_never_exceeds_shard_count(self):
        engine = BatchEngine(workers=64)
        data = bytes(16 * 4 * MIN_SHARD_BLOCKS)
        engine.xcrypt_ecb(KEY, data)
        assert engine.effective_workers == len(engine._shards(data))
        assert engine.effective_workers < 64


class TestEngineMetrics:
    def test_ops_blocks_and_gauge_recorded(self):
        from repro.obs.metrics import global_registry

        registry = global_registry()
        ops = registry.get("repro_engine_ops_total")
        blocks = registry.get("repro_engine_blocks_total")
        gauge = registry.get("repro_engine_workers_effective")
        before_ops = ops.labels(primitive="encrypt_blocks").value
        before_blocks = blocks.value
        BatchEngine("baseline").xcrypt_ecb(KEY, bytes(16 * 3))
        assert ops.labels(primitive="encrypt_blocks").value == \
            before_ops + 1
        assert blocks.value == before_blocks + 3
        assert gauge.value == 1

    def test_shard_latency_observed(self):
        from repro.obs.metrics import global_registry

        hist = global_registry().get("repro_engine_shard_seconds")
        child = hist.labels(backend="baseline")
        before = child.count
        BatchEngine("baseline").xcrypt_ecb(KEY, bytes(16 * 2))
        assert child.count == before + 1
        assert child.sum >= 0

    def test_backend_selection_counted(self):
        from repro.obs.metrics import global_registry

        counter = global_registry().get(
            "repro_engine_backend_selected_total")
        before = counter.labels(backend="ttable").value
        BatchEngine("ttable")
        assert counter.labels(backend="ttable").value == before + 1
