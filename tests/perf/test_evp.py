"""OpenSSL-EVP ceiling backend: equivalence and guarded registration.

The whole suite degrades gracefully: where no libcrypto loads (or it
fails its FIPS-197 self-test) the equivalence tests skip and the
registration tests assert the backend stays absent — the guard is
the feature under test.
"""

import random

import pytest

from repro.perf.backends import available_backends, get_backend
from repro.perf.bench import cross_check
from repro.perf.engine import BatchEngine
from repro.perf.evp import EvpBackend, have_evp, openssl_version

BLOCK = 16

needs_evp = pytest.mark.skipif(
    not have_evp(), reason="no self-test-passing libcrypto here")

_RNG = random.Random(0xE7B)


class TestRegistration:
    def test_registry_tracks_availability(self):
        assert ("evp" in available_backends()) == have_evp()

    def test_version_tracks_availability(self):
        version = openssl_version()
        if have_evp():
            assert isinstance(version, str) and version
        else:
            assert version is None

    def test_get_backend_message_when_absent(self):
        if have_evp():
            assert get_backend("evp").name == "evp"
        else:
            with pytest.raises(ValueError, match="libcrypto"):
                get_backend("evp")

    def test_auto_stays_sliced(self):
        # The ceiling is opt-in: auto must not silently change the
        # default stack even where OpenSSL is present.
        assert get_backend("auto").name == "sliced"


@needs_evp
class TestEquivalence:
    def test_matches_baseline_blocks(self):
        backend = EvpBackend()
        baseline = available_backends()["baseline"]
        key = _RNG.randbytes(16)
        for blocks in (1, 2, 48, 257):
            data = _RNG.randbytes(blocks * BLOCK)
            assert backend.encrypt_blocks(key, data) == \
                baseline.encrypt_blocks(key, data)

    def test_empty_input(self):
        assert EvpBackend().encrypt_blocks(bytes(16), b"") == b""

    def test_rejects_ragged_input(self):
        with pytest.raises(ValueError, match="multiple"):
            EvpBackend().encrypt_blocks(bytes(16), b"x" * 17)

    def test_rejects_bad_key_length(self):
        with pytest.raises(ValueError, match="16 bytes"):
            EvpBackend().encrypt_blocks(b"short", bytes(BLOCK))

    def test_cross_check_gate_includes_evp(self):
        # The bench equivalence gate exercises ECB, CTR with a
        # ragged tail, and the GCTR counter wrap through the engine.
        summary = cross_check({"evp": EvpBackend()},
                              corpus_blocks=16)
        assert "evp" in summary["backends"]
        assert summary["mismatches"] == 0

    def test_engine_modes_through_evp(self):
        engine = BatchEngine("evp")
        ref = BatchEngine("baseline")
        key = _RNG.randbytes(16)
        nonce = _RNG.randbytes(8)
        data = _RNG.randbytes(5 * BLOCK - 3)
        assert engine.xcrypt_ctr(key, nonce, data) == \
            ref.xcrypt_ctr(key, nonce, data)
