"""Backends must agree bit-for-bit with the straightforward model."""

import random

import pytest

from repro.aes.cipher import AES128
from repro.aes.key_schedule import expand_key
from repro.aes.vectors import (
    SP800_38A_ECB128_CIPHERTEXT,
    SP800_38A_ECB128_KEY,
    SP800_38A_ECB128_PLAINTEXT,
)
from repro.perf.backends import (
    BaselineBackend,
    RoundKeyCache,
    SlicedBackend,
    TTableBackend,
    available_backends,
    get_backend,
    have_numpy,
)


def serial_ecb(key, data):
    aes = AES128(key)
    return b"".join(aes.encrypt_block(data[i:i + 16])
                    for i in range(0, len(data), 16))


def all_backends():
    backends = [BaselineBackend(), TTableBackend(),
                SlicedBackend(vectorize=False)]
    if have_numpy():
        backends.append(SlicedBackend(vectorize=True))
    return backends


@pytest.mark.parametrize("backend", all_backends(),
                         ids=lambda b: f"{b.name}-"
                         f"{'np' if b.vectorized else 'py'}")
class TestEquivalence:
    def test_nist_ecb_vector(self, backend):
        got = backend.encrypt_blocks(SP800_38A_ECB128_KEY,
                                     SP800_38A_ECB128_PLAINTEXT)
        assert got == SP800_38A_ECB128_CIPHERTEXT

    def test_random_corpus(self, backend):
        rng = random.Random(7)
        for _ in range(3):
            key = rng.randbytes(16)
            data = rng.randbytes(16 * rng.randrange(1, 33))
            assert backend.encrypt_blocks(key, data) == \
                serial_ecb(key, data)

    def test_empty(self, backend):
        assert backend.encrypt_blocks(bytes(16), b"") == b""


class TestSlicedVariants:
    def test_pure_matches_vectorized(self):
        if not have_numpy():
            pytest.skip("numpy not available")
        rng = random.Random(11)
        key = rng.randbytes(16)
        data = rng.randbytes(16 * 50)
        pure = SlicedBackend(vectorize=False)
        fast = SlicedBackend(vectorize=True)
        assert pure.encrypt_blocks(key, data) == \
            fast.encrypt_blocks(key, data)

    def test_vectorize_flag_reported(self):
        assert SlicedBackend(vectorize=False).vectorized is False
        if have_numpy():
            assert SlicedBackend().vectorized is True

    def test_shares_injected_cache(self):
        cache = RoundKeyCache(capacity=4)
        backend = SlicedBackend(cache=cache, vectorize=False)
        backend.encrypt_blocks(bytes(16), bytes(16))
        assert len(cache) == 1


class TestRoundKeyCache:
    def test_words_match_expand_key(self):
        cache = RoundKeyCache()
        key = bytes(range(16))
        assert cache.words(key) == tuple(expand_key(key, 10))

    def test_hit_does_not_grow(self):
        cache = RoundKeyCache()
        cache.words(bytes(16))
        cache.words(bytes(16))
        assert len(cache) == 1

    def test_lru_eviction_order(self):
        cache = RoundKeyCache(capacity=2)
        k1, k2, k3 = (bytes([i]) + bytes(15) for i in range(3))
        cache.words(k1)
        cache.words(k2)
        cache.words(k1)      # refresh k1: k2 is now the LRU entry
        cache.words(k3)      # evicts k2
        assert len(cache) == 2
        cache.words(k1)      # still cached: no growth
        assert len(cache) == 2

    def test_clear(self):
        cache = RoundKeyCache()
        cache.words(bytes(16))
        cache.clear()
        assert len(cache) == 0

    def test_rejects_bad_key(self):
        with pytest.raises(ValueError):
            RoundKeyCache().words(bytes(8))

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            RoundKeyCache(capacity=0)


class TestRoundKeyCacheHygiene:
    """Evicted / discarded / cleared schedules must be zeroized, and
    handed-out schedules must never alias the wipeable buffer."""

    @staticmethod
    def _buffer(cache, key):
        return cache._entries[bytes(key)]

    def test_eviction_zeroizes_schedule(self):
        cache = RoundKeyCache(capacity=2)
        k1, k2, k3 = (bytes([i]) + bytes(15) for i in range(3))
        cache.words(k1)
        evicted = self._buffer(cache, k1)
        assert any(evicted)
        cache.words(k2)
        cache.words(k3)  # evicts k1
        assert len(cache) == 2
        assert not any(evicted), \
            "evicted schedule still reachable through the old buffer"

    def test_discard_zeroizes_schedule(self):
        cache = RoundKeyCache()
        key = bytes(range(16))
        cache.words(key)
        buffer = self._buffer(cache, key)
        cache.discard(key)
        assert len(cache) == 0
        assert not any(buffer)

    def test_discard_unknown_key_is_noop(self):
        cache = RoundKeyCache()
        cache.discard(bytes(16))  # nothing cached: must not raise
        assert len(cache) == 0

    def test_clear_zeroizes_every_schedule(self):
        cache = RoundKeyCache()
        keys = [bytes([i]) + bytes(15) for i in range(4)]
        buffers = []
        for key in keys:
            cache.words(key)
            buffers.append(self._buffer(cache, key))
        cache.clear()
        assert len(cache) == 0
        assert all(not any(buffer) for buffer in buffers)

    def test_words_tuple_survives_wipe(self):
        """Callers hold an unpacked tuple, never the buffer — a
        concurrent wipe must not corrupt in-flight schedules."""
        cache = RoundKeyCache()
        key = bytes(range(16))
        schedule = cache.words(key)
        cache.discard(key)
        assert schedule == tuple(expand_key(key, 10))

    def test_forget_key_drops_engine_and_ghash_state(self):
        from repro.aes import ghash as ghash_mod
        from repro.aes.cipher import AES128
        from repro.perf.engine import default_engine, forget_key

        key = bytes(range(16))
        engine = default_engine()
        cache = getattr(engine.backend, "cache", None)
        engine.xcrypt_ecb(key, bytes(32))  # populate schedule cache
        subkey = int.from_bytes(
            AES128(key).encrypt_block(bytes(16)), "big")
        ghash_mod.get_provider("table").digest(subkey, (b"x" * 16,))
        assert subkey in ghash_mod._TABLES
        forget_key(key)
        if cache is not None:
            assert key not in cache._entries
        assert subkey not in ghash_mod._TABLES

    def test_forget_key_tolerates_garbage(self):
        from repro.perf.engine import forget_key
        forget_key(b"short")  # malformed keys have nothing cached


class TestRegistry:
    def test_registry_names(self):
        from repro.perf.evp import have_evp
        expected = {"baseline", "ttable", "sliced"}
        if have_evp():
            expected.add("evp")
        assert set(available_backends()) == expected

    def test_get_backend_auto(self):
        assert get_backend("auto").name == "sliced"

    def test_get_backend_unknown(self):
        with pytest.raises(ValueError):
            get_backend("quantum")
