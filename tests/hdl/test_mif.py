"""Tests for the Altera MIF writer/parser."""

import pytest

from repro.aes.constants import INV_SBOX, SBOX
from repro.hdl.mif import MifError, parse_mif, write_mif


class TestWriter:
    def test_basic_shape(self):
        text = write_mif([0x63, 0x7C], 8)
        assert "DEPTH = 2;" in text
        assert "WIDTH = 8;" in text
        assert "CONTENT BEGIN" in text
        assert text.rstrip().endswith("END;")

    def test_values_hex_padded(self):
        text = write_mif([0x0, 0xAB], 8)
        assert "0 : 00;" in text
        assert "1 : AB;" in text

    def test_comment_prefixed(self):
        text = write_mif([1], 8, comment="hello\nworld")
        assert text.startswith("-- hello\n-- world\n")

    def test_width_validation(self):
        with pytest.raises(MifError):
            write_mif([1], 0)

    def test_value_fits_width(self):
        with pytest.raises(MifError):
            write_mif([256], 8)
        with pytest.raises(MifError):
            write_mif([-1], 8)

    def test_wide_words(self):
        text = write_mif([0xDEADBEEF], 32)
        assert "DEADBEEF" in text


class TestParser:
    def test_round_trip_sbox(self):
        text = write_mif(SBOX, 8, comment="forward S-box")
        parsed = parse_mif(text)
        assert parsed["depth"] == 256
        assert parsed["width"] == 8
        assert parsed["words"] == list(SBOX)

    def test_round_trip_inverse_sbox(self):
        parsed = parse_mif(write_mif(INV_SBOX, 8))
        assert parsed["words"] == list(INV_SBOX)

    def test_range_syntax(self):
        text = (
            "DEPTH = 8;\nWIDTH = 8;\nADDRESS_RADIX = HEX;\n"
            "DATA_RADIX = HEX;\nCONTENT BEGIN\n"
            "[0..3] : AA;\n4 : 01;\nEND;\n"
        )
        parsed = parse_mif(text)
        assert parsed["words"] == [0xAA] * 4 + [1, 0, 0, 0]

    def test_dec_radix(self):
        text = (
            "DEPTH = 4;\nWIDTH = 8;\nADDRESS_RADIX = DEC;\n"
            "DATA_RADIX = DEC;\nCONTENT BEGIN\n"
            "0 : 99;\n3 : 100;\nEND;\n"
        )
        parsed = parse_mif(text)
        assert parsed["words"] == [99, 0, 0, 100]

    def test_comments_ignored(self):
        text = write_mif([1, 2], 8)
        commented = "-- top comment\n" + text.replace(
            "WIDTH = 8;", "WIDTH = 8; -- width"
        )
        assert parse_mif(commented)["words"] == [1, 2]

    def test_missing_end_rejected(self):
        text = write_mif([1], 8).replace("END;", "")
        with pytest.raises(MifError):
            parse_mif(text)

    def test_missing_header_rejected(self):
        with pytest.raises(MifError):
            parse_mif("CONTENT BEGIN\n0 : 1;\nEND;\n")

    def test_bad_radix_rejected(self):
        text = write_mif([1], 8).replace(
            "DATA_RADIX = HEX;", "DATA_RADIX = ROMAN;"
        )
        with pytest.raises(MifError):
            parse_mif(text)

    def test_address_bounds_checked(self):
        text = (
            "DEPTH = 2;\nWIDTH = 8;\nADDRESS_RADIX = HEX;\n"
            "DATA_RADIX = HEX;\nCONTENT BEGIN\n5 : 00;\nEND;\n"
        )
        with pytest.raises(MifError):
            parse_mif(text)

    def test_value_bounds_checked(self):
        text = (
            "DEPTH = 2;\nWIDTH = 8;\nADDRESS_RADIX = HEX;\n"
            "DATA_RADIX = HEX;\nCONTENT BEGIN\n0 : 1FF;\nEND;\n"
        )
        with pytest.raises(MifError):
            parse_mif(text)

    def test_garbage_line_rejected(self):
        text = write_mif([1], 8).replace("CONTENT BEGIN",
                                         "garbage\nCONTENT BEGIN")
        with pytest.raises(MifError):
            parse_mif(text)
