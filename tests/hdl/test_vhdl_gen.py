"""Tests for the VHDL soft-IP generator."""

import pytest

from repro.hdl.lint import LintError, lint_vhdl
from repro.hdl.mif import parse_mif
from repro.hdl.vhdl_gen import (
    generate_core_entity,
    generate_core_vhdl,
    generate_package,
    generate_sbox_entity,
    generate_sbox_mifs,
)
from repro.aes.constants import INV_SBOX, SBOX
from repro.ip.control import Variant


class TestPackage:
    def test_constants_match_model(self):
        text = generate_package()
        assert "NUM_ROUNDS       : natural := 10" in text
        assert "BLOCK_LATENCY    : natural := 50" in text
        assert "KEY_SETUP_CYCLES : natural := 40" in text

    def test_rcon_values_emitted(self):
        text = generate_package()
        assert 'x"01"' in text and 'x"36"' in text  # Rcon[1], Rcon[10]

    def test_lints(self):
        report = lint_vhdl(generate_package(), "pkg")
        assert "rijndael_pkg" in report.packages


class TestSboxEntities:
    def test_forward_table_embedded(self):
        text = generate_sbox_entity(inverse=False)
        assert f'x"{SBOX[0]:02X}"' in text
        assert f'x"{SBOX[255]:02X}"' in text
        assert "sbox_forward.mif" in text

    def test_inverse_table_embedded(self):
        text = generate_sbox_entity(inverse=True)
        assert f'x"{INV_SBOX[0]:02X}"' in text
        assert "inv_sbox_rom" in text

    def test_table_has_256_entries(self):
        text = generate_sbox_entity()
        assert text.count('x"') == 256

    def test_lints(self):
        for inverse in (False, True):
            report = lint_vhdl(generate_sbox_entity(inverse), "sbox")
            assert len(report.entities) == 1
            assert report.ports == ("addr", "data")


class TestCoreEntity:
    @pytest.mark.parametrize("variant", list(Variant),
                             ids=lambda v: v.value)
    def test_lints(self, variant):
        report = lint_vhdl(generate_core_entity(variant), "core")
        assert report.entities == (f"rijndael_core_{variant.value}",)
        # The paper's four processes: Data_In, Round Key, Rijndael, Out.
        assert report.processes == 4

    def test_table1_ports_present(self):
        text = generate_core_entity(Variant.BOTH)
        for port in ("clk", "setup", "wr_data", "wr_key", "din",
                     "enc_dec", "data_ok", "dout"):
            assert port in text

    def test_encdec_only_on_both(self):
        assert "enc_dec" not in generate_core_entity(Variant.ENCRYPT)
        assert "enc_dec" in generate_core_entity(Variant.BOTH)

    def test_timing_facts_in_header(self):
        text = generate_core_entity(Variant.ENCRYPT)
        assert "5 cycles" in text
        assert "50 cycles per block" in text

    def test_setup_pass_note_on_decrypt(self):
        assert "40-cycle" in generate_core_entity(Variant.DECRYPT)


class TestBundles:
    @pytest.mark.parametrize("variant", list(Variant),
                             ids=lambda v: v.value)
    def test_bundle_complete_and_clean(self, variant):
        files = generate_core_vhdl(variant)
        assert "rijndael_pkg.vhd" in files
        assert f"rijndael_core_{variant.value}.vhd" in files
        for name, text in files.items():
            if name.endswith(".vhd"):
                lint_vhdl(text, name)
            else:
                parsed = parse_mif(text)
                assert parsed["depth"] == 256

    def test_encrypt_bundle_has_no_inverse_rom(self):
        files = generate_core_vhdl(Variant.ENCRYPT)
        assert "inv_sbox_rom.vhd" not in files
        assert "sbox_inverse.mif" not in files

    def test_decrypt_bundle_keeps_forward_rom_for_kstran(self):
        files = generate_core_vhdl(Variant.DECRYPT)
        assert "sbox_rom.vhd" in files  # KStran uses the forward box
        assert "inv_sbox_rom.vhd" in files

    def test_mif_matches_embedded_table(self):
        mifs = generate_sbox_mifs(Variant.BOTH)
        assert parse_mif(mifs["sbox_forward.mif"])["words"] == list(SBOX)
        assert parse_mif(mifs["sbox_inverse.mif"])["words"] == \
            list(INV_SBOX)


class TestLinter:
    def test_detects_unbalanced_process(self):
        bad = generate_core_entity(Variant.ENCRYPT).replace(
            "end process data_in_proc;", "", 1
        )
        with pytest.raises(LintError):
            lint_vhdl(bad, "bad")

    def test_detects_missing_end_entity(self):
        good = generate_sbox_entity()
        bad = good.replace("end entity sbox_rom;", "")
        with pytest.raises(LintError):
            lint_vhdl(bad, "bad")

    def test_detects_unused_port(self):
        bad = generate_sbox_entity().replace(
            "data <= TABLE(to_integer(unsigned(addr)));",
            'data <= x"00";',
        )
        with pytest.raises(LintError):
            lint_vhdl(bad, "bad")

    def test_detects_case_imbalance(self):
        bad = generate_core_entity(Variant.ENCRYPT).replace(
            "end case;", "", 1
        )
        with pytest.raises(LintError):
            lint_vhdl(bad, "bad")
