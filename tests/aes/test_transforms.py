"""Tests for the four round transforms and their inverses (paper §3)."""

import pytest

from repro.aes.constants import SBOX
from repro.aes.state import State
from repro.aes.transforms import (
    add_round_key,
    inv_mix_columns,
    inv_shift_rows,
    inv_sub_bytes,
    mix_columns,
    shift_offsets,
    shift_rows,
    sub_bytes,
)


def state_of(hexstr: str) -> State:
    return State(bytes.fromhex(hexstr))


class TestSubBytes:
    def test_applies_sbox_per_byte(self):
        state = State(bytes(range(16)))
        out = sub_bytes(state)
        assert out.to_bytes() == bytes(SBOX[b] for b in range(16))

    def test_fips_round1_sub_bytes(self):
        # FIPS-197 Appendix B round 1: start_of_round -> after SubBytes.
        start = state_of("193de3bea0f4e22b9ac68d2ae9f84808")
        expected = state_of("d42711aee0bf98f1b8b45de51e415230")
        assert sub_bytes(start) == expected

    def test_inverse_round_trip(self):
        state = State(bytes(range(16)))
        assert inv_sub_bytes(sub_bytes(state)) == state

    def test_does_not_mutate_input(self):
        state = State(bytes(range(16)))
        sub_bytes(state)
        assert state.to_bytes() == bytes(range(16))


class TestShiftRows:
    def test_offsets_nb4(self):
        assert shift_offsets(4) == (0, 1, 2, 3)

    def test_offsets_nb6(self):
        assert shift_offsets(6) == (0, 1, 2, 3)

    def test_offsets_nb8(self):
        assert shift_offsets(8) == (0, 1, 3, 4)

    def test_offsets_reject_bad_nb(self):
        with pytest.raises(ValueError):
            shift_offsets(5)

    def test_row_zero_untouched(self):
        state = State(bytes(range(16)))
        assert shift_rows(state).row(0) == state.row(0)

    def test_rows_rotate_left_by_index(self):
        state = State(bytes(range(16)))
        out = shift_rows(state)
        assert out.row(1) == (5, 9, 13, 1)
        assert out.row(2) == (10, 14, 2, 6)
        assert out.row(3) == (15, 3, 7, 11)

    def test_fips_round1_shift_rows(self):
        before = state_of("d42711aee0bf98f1b8b45de51e415230")
        expected = state_of("d4bf5d30e0b452aeb84111f11e2798e5")
        assert shift_rows(before) == expected

    def test_inverse_round_trip(self):
        state = State(bytes(range(16)))
        assert inv_shift_rows(shift_rows(state)) == state

    def test_four_applications_identity_nb4(self):
        state = State(bytes(range(16)))
        out = state
        for _ in range(4):
            out = shift_rows(out)
        assert out == state

    def test_nb8_uses_different_offsets(self):
        state = State(bytes(range(32)), nb=8)
        out = shift_rows(state)
        # Row 2 shifts by 3 for Nb=8.
        assert out.row(2)[0] == state.row(2)[3]


class TestMixColumns:
    def test_fips_round1_mix_columns(self):
        before = state_of("d4bf5d30e0b452aeb84111f11e2798e5")
        expected = state_of("046681e5e0cb199a48f8d37a2806264c")
        assert mix_columns(before) == expected

    def test_inverse_round_trip(self):
        state = State(bytes(range(16)))
        assert inv_mix_columns(mix_columns(state)) == state

    def test_columns_independent(self):
        base = State.zero()
        base.set_column(1, (0xDB, 0x13, 0x53, 0x45))
        out = mix_columns(base)
        assert out.column(1) == (0x8E, 0x4D, 0xA1, 0xBC)
        assert out.column(0) == (0, 0, 0, 0)
        assert out.column(2) == (0, 0, 0, 0)

    def test_linear_over_xor(self):
        a = State(bytes(range(16)))
        b = State(bytes(range(16, 32)))
        xored = State(bytes(x ^ y for x, y in
                            zip(a.to_bytes(), b.to_bytes())))
        lhs = mix_columns(xored).to_bytes()
        rhs = bytes(
            x ^ y for x, y in zip(mix_columns(a).to_bytes(),
                                  mix_columns(b).to_bytes())
        )
        assert lhs == rhs


class TestAddRoundKey:
    def test_xors_bytes(self):
        state = State(bytes(range(16)))
        key = bytes(range(16))
        assert add_round_key(state, key) == State.zero()

    def test_is_involution(self):
        state = State(bytes(range(16)))
        key = bytes(reversed(range(16)))
        assert add_round_key(add_round_key(state, key), key) == state

    def test_fips_initial_add_key(self):
        plaintext = state_of("3243f6a8885a308d313198a2e0370734")
        key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
        expected = state_of("193de3bea0f4e22b9ac68d2ae9f84808")
        assert add_round_key(plaintext, key) == expected

    def test_wrong_key_length(self):
        with pytest.raises(ValueError):
            add_round_key(State.zero(), bytes(15))

    def test_nb6_key_length(self):
        state = State(bytes(24), nb=6)
        assert add_round_key(state, bytes(24)) == state
