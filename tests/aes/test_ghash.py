"""Property suite for the pluggable GHASH providers.

Every provider must agree bit-for-bit with the golden table-free
``repro.aes.gcm._ghash`` — over the short-length sweep (0..3 blocks
± 1 byte), over multi-part messages laid out like GCM's
AAD/ciphertext/lengths split, and over buffers long enough to cross
the vector provider's lane threshold.  The NIST GCM cases then pin
the end-to-end mode with each provider installed as the default.
"""

import random

import pytest

from repro.aes import ghash as ghash_mod
from repro.aes.gcm import _ghash, gcm_decrypt, gcm_encrypt
from repro.aes.ghash import (
    VECTOR_LANES,
    available_providers,
    get_provider,
    gf128_mul,
)

BLOCK = 16

_RNG = random.Random(0x6A55)

SHORT_LENGTHS = sorted({
    max(0, n * BLOCK + d) for n in range(4) for d in (-1, 0, 1)
})

#: Crosses the numpy lane threshold with a ragged tail.
LONG_LENGTHS = (
    2 * VECTOR_LANES * BLOCK,
    2 * VECTOR_LANES * BLOCK + 5,
    3 * VECTOR_LANES * BLOCK + BLOCK - 1,
)


def _padded(part: bytes) -> bytes:
    return part + bytes((-len(part)) % BLOCK)


def provider_items():
    return sorted(available_providers().items())


@pytest.mark.parametrize("name,provider", provider_items())
class TestAgainstGolden:
    @pytest.mark.parametrize("length", SHORT_LENGTHS)
    def test_short_lengths(self, name, provider, length):
        h = _RNG.getrandbits(128)
        data = _RNG.randbytes(length)
        assert provider.digest(h, (data,)) == _ghash(h, _padded(data))

    @pytest.mark.parametrize("length", LONG_LENGTHS)
    def test_lane_threshold_lengths(self, name, provider, length):
        h = _RNG.getrandbits(128)
        data = _RNG.randbytes(length)
        assert provider.digest(h, (data,)) == _ghash(h, _padded(data))

    def test_multi_part_gcm_layout(self, name, provider):
        """aad | ciphertext | lengths, each padded independently."""
        h = _RNG.getrandbits(128)
        for aad_len, ct_len in [(0, 0), (0, 60), (20, 0), (20, 60),
                                (17, 4096), (1, BLOCK)]:
            aad = _RNG.randbytes(aad_len)
            ct = _RNG.randbytes(ct_len)
            lengths = ((8 * aad_len).to_bytes(8, "big")
                       + (8 * ct_len).to_bytes(8, "big"))
            want = _ghash(h, _padded(aad) + _padded(ct) + lengths)
            assert provider.digest(h, (aad, ct, lengths)) == want

    def test_empty_message(self, name, provider):
        h = _RNG.getrandbits(128)
        assert provider.digest(h, ()) == 0
        assert provider.digest(h, (b"", b"")) == 0

    def test_zero_subkey(self, name, provider):
        assert provider.digest(0, (_RNG.randbytes(64),)) == 0


@pytest.mark.parametrize("name", sorted(available_providers()))
class TestNistVectorsPerProvider:
    """The canonical GCM cases with each provider as the default."""

    K96 = bytes.fromhex("feffe9928665731c6d6a8f9467308308")
    IV96 = bytes.fromhex("cafebabefacedbaddecaf888")
    P60 = bytes.fromhex(
        "d9313225f88406e5a55909c5aff5269a"
        "86a7a9531534f7da2e4c303d8a318a72"
        "1c3c0c95956809532fcf0e2449a6b525"
        "b16aedf5aa0de657ba637b39"
    )
    AAD = bytes.fromhex(
        "feedfacedeadbeeffeedfacedeadbeefabaddad2")

    @pytest.fixture(autouse=True)
    def _pin_provider(self, name):
        previous = ghash_mod.default_provider().name
        ghash_mod.set_default_provider(name)
        yield
        ghash_mod.set_default_provider(previous)

    def test_case_1_empty(self, name):
        ct, tag = gcm_encrypt(bytes(16), bytes(12), b"")
        assert ct == b""
        assert tag.hex() == "58e2fccefa7e3061367f1d57a4e7455a"

    def test_case_4_with_aad(self, name):
        ct, tag = gcm_encrypt(self.K96, self.IV96, self.P60, self.AAD)
        assert tag.hex() == "5bc94fbc3221a5db94fae95ae7121a47"
        assert gcm_decrypt(self.K96, self.IV96, ct, tag,
                           self.AAD) == self.P60

    def test_long_iv_round_trip(self, name):
        """The non-96-bit IV path routes J0 through the provider."""
        iv = _RNG.randbytes(37)
        key = _RNG.randbytes(16)
        pt = _RNG.randbytes(100)
        ct, tag = gcm_encrypt(key, iv, pt)
        assert gcm_decrypt(key, iv, ct, tag) == pt


class TestRandomizedEquivalence:
    def test_random_lengths_including_empty(self):
        """Satellite regression: tail-only padding must digest
        identically to the old fully-padded implementation over
        random lengths, including empty AAD and 0-length payload."""
        rng = random.Random(2003)
        providers = available_providers()
        for _ in range(40):
            h = rng.getrandbits(128)
            aad = rng.randbytes(rng.choice([0, 1, 20, 333]))
            ct = rng.randbytes(rng.choice([0, 1, 60, 4097]))
            lengths = ((8 * len(aad)).to_bytes(8, "big")
                       + (8 * len(ct)).to_bytes(8, "big"))
            want = _ghash(h, _padded(aad) + _padded(ct) + lengths)
            for name, provider in providers.items():
                got = provider.digest(h, (aad, ct, lengths))
                assert got == want, (name, len(aad), len(ct))


class TestRegistry:
    def test_bitwise_and_table_always_available(self):
        providers = available_providers()
        assert {"bitwise", "table"} <= set(providers)

    def test_vector_tracks_numpy(self):
        assert (("vector" in available_providers())
                == ghash_mod.have_numpy())

    def test_auto_prefers_vector_with_numpy(self):
        expected = "vector" if ghash_mod.have_numpy() else "table"
        assert get_provider("auto").name == expected

    def test_unknown_provider_rejected(self):
        with pytest.raises(ValueError, match="unknown ghash"):
            get_provider("quantum")

    def test_default_provider_is_process_wide(self):
        first = ghash_mod.default_provider()
        assert ghash_mod.default_provider() is first

    def test_gf128_mul_reexported_from_gcm(self):
        from repro.aes import gcm
        assert gcm.gf128_mul is gf128_mul


class TestTableHygiene:
    def test_forget_zeroizes_tables(self):
        h = _RNG.getrandbits(128) | 1
        provider = get_provider("table")
        provider.digest(h, (b"x" * 64,))
        table_set = ghash_mod._TABLES.get(h)
        assert any(any(row) for row in table_set.tables)
        ghash_mod.forget(h)
        assert h not in ghash_mod._TABLES
        assert not any(any(row) for row in table_set.tables)
        assert not table_set.numpy_packs

    def test_eviction_zeroizes_tables(self):
        cache = ghash_mod._TableCache(capacity=1)
        first = cache.get(3)
        assert any(any(row) for row in first.tables)
        cache.get(5)  # evicts subkey 3
        assert 3 not in cache
        assert not any(any(row) for row in first.tables)

    def test_clear_zeroizes_everything(self):
        cache = ghash_mod._TableCache(capacity=4)
        sets = [cache.get(k) for k in (3, 5, 7)]
        cache.clear()
        assert len(cache) == 0
        for table_set in sets:
            assert not any(any(row) for row in table_set.tables)
