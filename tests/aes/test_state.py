"""Tests for the state_t matrix (paper Fig. 1)."""

import pytest

from repro.aes.state import State, bytes_to_words, words_to_bytes


class TestConstruction:
    def test_needs_sixteen_bytes_for_nb4(self):
        with pytest.raises(ValueError):
            State(bytes(15))
        with pytest.raises(ValueError):
            State(bytes(17))

    def test_nb6_needs_24_bytes(self):
        assert State(bytes(24), nb=6).nb == 6

    def test_nb8_needs_32_bytes(self):
        assert State(bytes(32), nb=8).nb == 8

    def test_illegal_nb_rejected(self):
        with pytest.raises(ValueError):
            State(bytes(20), nb=5)

    def test_zero_factory(self):
        assert State.zero().to_bytes() == bytes(16)
        assert State.zero(nb=6).to_bytes() == bytes(24)


class TestByteOrdering:
    """Input byte n sits at row n mod 4, column n div 4."""

    def test_column_major_fill(self):
        state = State(bytes(range(16)))
        assert state.get(0, 0) == 0
        assert state.get(1, 0) == 1
        assert state.get(3, 0) == 3
        assert state.get(0, 1) == 4
        assert state.get(3, 3) == 15

    def test_round_trip(self):
        data = bytes(range(16))
        assert State(data).to_bytes() == data

    def test_row_view(self):
        state = State(bytes(range(16)))
        assert state.row(0) == (0, 4, 8, 12)
        assert state.row(3) == (3, 7, 11, 15)

    def test_column_view(self):
        state = State(bytes(range(16)))
        assert state.column(0) == (0, 1, 2, 3)
        assert state.column(3) == (12, 13, 14, 15)

    def test_columns_iterator(self):
        state = State(bytes(range(16)))
        assert list(state.columns()) == [state.column(c) for c in range(4)]


class TestAccessors:
    def test_set_get(self):
        state = State.zero()
        state.set(2, 1, 0xAB)
        assert state.get(2, 1) == 0xAB
        assert state.to_bytes()[1 * 4 + 2] == 0xAB

    def test_set_rejects_bad_byte(self):
        with pytest.raises(ValueError):
            State.zero().set(0, 0, 256)

    def test_out_of_range_row(self):
        with pytest.raises(ValueError):
            State.zero().get(4, 0)

    def test_out_of_range_column(self):
        with pytest.raises(ValueError):
            State.zero().get(0, 4)

    def test_set_row(self):
        state = State.zero()
        state.set_row(1, (9, 8, 7, 6))
        assert state.row(1) == (9, 8, 7, 6)

    def test_set_row_wrong_width(self):
        with pytest.raises(ValueError):
            State.zero().set_row(0, (1, 2, 3))

    def test_set_column(self):
        state = State.zero()
        state.set_column(2, (1, 2, 3, 4))
        assert state.column(2) == (1, 2, 3, 4)

    def test_set_column_validates_bytes(self):
        with pytest.raises(ValueError):
            State.zero().set_column(0, (0, 0, 0, 300))


class TestValueSemantics:
    def test_copy_is_independent(self):
        a = State(bytes(range(16)))
        b = a.copy()
        b.set(0, 0, 0xFF)
        assert a.get(0, 0) == 0

    def test_equality(self):
        assert State(bytes(16)) == State(bytes(16))
        assert State(bytes(16)) != State(bytes([1] + [0] * 15))

    def test_nb_matters_for_equality(self):
        assert State(bytes(16)) != State(bytes(24), nb=6)

    def test_hashable(self):
        assert len({State(bytes(16)), State(bytes(16))}) == 1

    def test_render_has_four_rows(self):
        assert State.zero().render().count("\n") == 3


class TestWordPacking:
    def test_words_to_bytes(self):
        assert words_to_bytes([0x01020304]) == b"\x01\x02\x03\x04"

    def test_bytes_to_words(self):
        assert bytes_to_words(b"\x01\x02\x03\x04\xaa\xbb\xcc\xdd") == [
            0x01020304, 0xAABBCCDD,
        ]

    def test_round_trip(self):
        words = [0xDEADBEEF, 0x00C0FFEE, 0x12345678, 0x9ABCDEF0]
        assert bytes_to_words(words_to_bytes(words)) == words

    def test_bad_word_rejected(self):
        with pytest.raises(ValueError):
            words_to_bytes([1 << 32])

    def test_bad_length_rejected(self):
        with pytest.raises(ValueError):
            bytes_to_words(b"\x01\x02\x03")
