"""Tests for AES-GCM against the NIST SP 800-38D test cases."""

import pytest

from repro.aes.gcm import (
    MAX_AAD_BYTES,
    MAX_IV_BYTES,
    MAX_PLAINTEXT_BYTES,
    AuthenticationError,
    _check_lengths,
    _inc32,
    gcm_decrypt,
    gcm_encrypt,
    gf128_mul,
)

# The canonical GCM validation vectors (McGrew-Viega / NIST).
K96 = bytes.fromhex("feffe9928665731c6d6a8f9467308308")
IV96 = bytes.fromhex("cafebabefacedbaddecaf888")
P60 = bytes.fromhex(
    "d9313225f88406e5a55909c5aff5269a"
    "86a7a9531534f7da2e4c303d8a318a72"
    "1c3c0c95956809532fcf0e2449a6b525"
    "b16aedf5aa0de657ba637b39"
)
AAD = bytes.fromhex("feedfacedeadbeeffeedfacedeadbeefabaddad2")


class TestNistVectors:
    def test_case_1_empty(self):
        ct, tag = gcm_encrypt(bytes(16), bytes(12), b"")
        assert ct == b""
        assert tag.hex() == "58e2fccefa7e3061367f1d57a4e7455a"

    def test_case_2_zero_block(self):
        ct, tag = gcm_encrypt(bytes(16), bytes(12), bytes(16))
        assert ct.hex() == "0388dace60b6a392f328c2b971b2fe78"
        assert tag.hex() == "ab6e47d42cec13bdf53a67b21257bddf"

    def test_case_4_with_aad(self):
        ct, tag = gcm_encrypt(K96, IV96, P60, AAD)
        assert tag.hex() == "5bc94fbc3221a5db94fae95ae7121a47"
        assert len(ct) == len(P60)

    def test_case_4_decrypts(self):
        ct, tag = gcm_encrypt(K96, IV96, P60, AAD)
        assert gcm_decrypt(K96, IV96, ct, tag, AAD) == P60


class TestAuthentication:
    def test_tampered_ciphertext_rejected(self):
        ct, tag = gcm_encrypt(K96, IV96, P60, AAD)
        bad = bytes([ct[0] ^ 1]) + ct[1:]
        with pytest.raises(AuthenticationError):
            gcm_decrypt(K96, IV96, bad, tag, AAD)

    def test_tampered_tag_rejected(self):
        ct, tag = gcm_encrypt(K96, IV96, P60, AAD)
        bad = bytes([tag[15] ^ 0x80]) + tag[1:]
        with pytest.raises(AuthenticationError):
            gcm_decrypt(K96, IV96, ct, bytes([tag[0] ^ 1]) + tag[1:],
                        AAD)

    def test_tampered_aad_rejected(self):
        ct, tag = gcm_encrypt(K96, IV96, P60, AAD)
        with pytest.raises(AuthenticationError):
            gcm_decrypt(K96, IV96, ct, tag, AAD + b"x")

    def test_wrong_key_rejected(self):
        ct, tag = gcm_encrypt(K96, IV96, P60, AAD)
        with pytest.raises(AuthenticationError):
            gcm_decrypt(bytes(16), IV96, ct, tag, AAD)

    def test_empty_iv_rejected(self):
        with pytest.raises(ValueError):
            gcm_encrypt(K96, b"", P60)


class _Sized:
    """Length-only stand-in: huge operands without the memory."""

    def __init__(self, length):
        self._length = length

    def __len__(self):
        return self._length


class TestLengthLimits:
    """SP 800-38D operand bounds, enforced before any processing."""

    def test_constants_match_spec_bits(self):
        assert MAX_PLAINTEXT_BYTES * 8 == (1 << 39) - 256
        assert MAX_AAD_BYTES == ((1 << 64) - 1) // 8
        assert MAX_IV_BYTES == MAX_AAD_BYTES

    def test_limits_accepted_exactly(self):
        _check_lengths(MAX_PLAINTEXT_BYTES, MAX_AAD_BYTES,
                       MAX_IV_BYTES)

    @pytest.mark.parametrize("plaintext,aad,iv,match", [
        (MAX_PLAINTEXT_BYTES + 1, 0, 12, "plaintext"),
        (0, MAX_AAD_BYTES + 1, 12, "AAD"),
        (0, 0, MAX_IV_BYTES + 1, "IV"),
    ])
    def test_over_limit_rejected(self, plaintext, aad, iv, match):
        with pytest.raises(ValueError, match=match):
            _check_lengths(plaintext, aad, iv)

    def test_encrypt_rejects_oversized_before_processing(self):
        # A length-only object proves the check reads len() alone —
        # an implementation that touched the payload would TypeError.
        with pytest.raises(ValueError, match="plaintext"):
            gcm_encrypt(K96, IV96, _Sized(MAX_PLAINTEXT_BYTES + 1))

    def test_decrypt_rejects_oversized_aad(self):
        with pytest.raises(ValueError, match="AAD"):
            gcm_decrypt(K96, IV96, b"", bytes(16),
                        _Sized(MAX_AAD_BYTES + 1))

    def test_inc32_wraps_modulo_2_32(self):
        # The spec-defined wrap the length limits make unreachable.
        block = bytes(range(12)) + b"\xff\xff\xff\xff"
        assert _inc32(block) == bytes(range(12)) + bytes(4)
        assert _inc32(bytes(16)) == bytes(15) + b"\x01"


class TestNon96BitIv:
    def test_long_iv_round_trip(self):
        iv = bytes(range(60))
        ct, tag = gcm_encrypt(K96, iv, P60, AAD)
        assert gcm_decrypt(K96, iv, ct, tag, AAD) == P60

    def test_short_iv_round_trip(self):
        iv = b"\x01\x02\x03"
        ct, tag = gcm_encrypt(K96, iv, b"hello world")
        assert gcm_decrypt(K96, iv, ct, tag) == b"hello world"

    def test_iv_length_matters(self):
        a = gcm_encrypt(K96, bytes(12), P60)[0]
        b = gcm_encrypt(K96, bytes(13), P60)[0]
        assert a != b


class TestGf128:
    def test_identity_element(self):
        # GCM bit order: the identity is x^0 = MSB-first 1000...0.
        one = 1 << 127
        for value in (1, 0xDEADBEEF, (1 << 128) - 1):
            assert gf128_mul(value, one) == value

    def test_commutative(self):
        a, b = 0x123456789ABCDEF0 << 60, 0x0FEDCBA987654321
        assert gf128_mul(a, b) == gf128_mul(b, a)

    def test_zero_annihilates(self):
        assert gf128_mul(0, 0xABC) == 0

    def test_range_checked(self):
        with pytest.raises(ValueError):
            gf128_mul(1 << 128, 1)


class TestRoundTrips:
    def test_various_lengths(self, rng):
        key = bytes(rng.randrange(256) for _ in range(16))
        iv = bytes(rng.randrange(256) for _ in range(12))
        for length in (0, 1, 15, 16, 17, 33, 64):
            plaintext = bytes(rng.randrange(256)
                              for _ in range(length))
            ct, tag = gcm_encrypt(key, iv, plaintext)
            assert len(ct) == length
            assert gcm_decrypt(key, iv, ct, tag) == plaintext

    def test_aad_only_message(self, rng):
        key = bytes(rng.randrange(256) for _ in range(16))
        iv = bytes(rng.randrange(256) for _ in range(12))
        ct, tag = gcm_encrypt(key, iv, b"", aad=b"header only")
        assert ct == b""
        assert gcm_decrypt(key, iv, b"", tag, aad=b"header only") == b""
