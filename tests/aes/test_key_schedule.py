"""Tests for the key schedule: expansion, KStran, on-the-fly stepping."""

import pytest

from repro.aes.key_schedule import (
    expand_key,
    kstran,
    last_round_key,
    next_round_key,
    previous_round_key,
    rot_word,
    round_keys_from_words,
    sub_word,
)
from repro.aes.vectors import (
    FIPS197_APPENDIX_A_W4_W7,
    FIPS197_APPENDIX_B,
    FIPS197_APPENDIX_C2,
    FIPS197_APPENDIX_C3,
)


class TestWordOps:
    def test_rot_word(self):
        assert rot_word(0x09CF4F3C) == 0xCF4F3C09

    def test_rot_word_identity_on_repeats(self):
        assert rot_word(0xAAAAAAAA) == 0xAAAAAAAA

    def test_sub_word(self):
        # FIPS-197 Appendix A: SubWord(cf4f3c09) = 8a84eb01.
        assert sub_word(0xCF4F3C09) == 0x8A84EB01

    def test_word_range_checked(self):
        with pytest.raises(ValueError):
            rot_word(1 << 32)
        with pytest.raises(ValueError):
            sub_word(-1)


class TestKStran:
    def test_fips_appendix_a_step(self):
        # Appendix A, i=4: after XOR with Rcon -> 8b84eb01.
        assert kstran(0x09CF4F3C, 1) == 0x8B84EB01

    def test_round_constant_lands_in_top_byte(self):
        base = kstran(0x00000000, 1)
        again = kstran(0x00000000, 2)
        # Only the Rcon byte differs between rounds.
        assert (base ^ again) == ((0x01 ^ 0x02) << 24)

    def test_round_index_bounds(self):
        with pytest.raises(ValueError):
            kstran(0, 0)
        with pytest.raises(ValueError):
            kstran(0, 99)


class TestExpansion:
    def test_appendix_a_first_round(self):
        words = expand_key(FIPS197_APPENDIX_B.key, 10)
        assert tuple(words[4:8]) == FIPS197_APPENDIX_A_W4_W7

    def test_word_count_aes128(self):
        assert len(expand_key(bytes(16), 10)) == 44

    def test_word_count_aes192(self):
        assert len(expand_key(bytes(24), 12)) == 52

    def test_word_count_aes256(self):
        assert len(expand_key(bytes(32), 14)) == 60

    def test_aes192_expansion_pinned_by_appendix_c(self):
        # The 192-bit schedule is pinned end-to-end by the Appendix
        # C.2 known answer (tests/aes/test_cipher.py); here assert its
        # shape and that the schedule diffuses: every round key after
        # the raw key words depends on the key.
        words = expand_key(FIPS197_APPENDIX_C2.key, 12)
        zero_words = expand_key(bytes(24), 12)
        assert len(words) == len(zero_words) == 52
        assert all(a != b for a, b in zip(words[6:], zero_words[6:]))

    def test_aes256_extra_subword_matters(self):
        # Nk=8 applies SubWord at i % 8 == 4; removing that step (as a
        # naive Nk<=6-style schedule would) must change the expansion.
        words = expand_key(FIPS197_APPENDIX_C3.key, 14)
        assert len(words) == 60
        # The first affected word is w12 (i=12, 12%8==4).
        naive_w12 = words[4] ^ words[11]
        assert words[12] != naive_w12

    def test_rejects_bad_key_length(self):
        with pytest.raises(ValueError):
            expand_key(bytes(15), 10)

    def test_round_keys_grouping(self):
        words = expand_key(FIPS197_APPENDIX_B.key, 10)
        keys = round_keys_from_words(words)
        assert len(keys) == 11
        assert keys[0] == FIPS197_APPENDIX_B.key
        assert all(len(k) == 16 for k in keys)

    def test_grouping_rejects_ragged(self):
        with pytest.raises(ValueError):
            round_keys_from_words([1, 2, 3])


class TestOnTheFly:
    def test_forward_matches_expansion(self, fips_key):
        words = expand_key(fips_key, 10)
        current = tuple(words[0:4])
        for rnd in range(1, 11):
            current = next_round_key(current, rnd)
            assert list(current) == words[4 * rnd : 4 * rnd + 4]

    def test_reverse_matches_expansion(self, fips_key):
        words = expand_key(fips_key, 10)
        current = tuple(words[40:44])
        for rnd in range(10, 0, -1):
            current = previous_round_key(current, rnd)
            assert list(current) == words[4 * (rnd - 1) : 4 * rnd]

    def test_forward_reverse_inverse(self, fips_key):
        words = expand_key(fips_key, 10)
        k = tuple(words[16:20])  # K4
        assert previous_round_key(next_round_key(k, 5), 5) == k

    def test_last_round_key_matches_expansion(self, fips_key):
        words = expand_key(fips_key, 10)
        assert list(last_round_key(fips_key)) == words[40:44]

    def test_last_round_key_needs_16_bytes(self):
        with pytest.raises(ValueError):
            last_round_key(bytes(24))

    def test_round_key_shape_checked(self):
        with pytest.raises(ValueError):
            next_round_key((1, 2, 3), 1)
        with pytest.raises(ValueError):
            previous_round_key((1, 2, 3, 1 << 32), 1)
