"""Tests for CMAC (RFC 4493) and AES Key Wrap (RFC 3394)."""

import pytest

from repro.aes.auth import (
    IntegrityError,
    KEY_WRAP_IV,
    cmac,
    cmac_subkeys,
    cmac_verify,
    key_unwrap,
    key_wrap,
)

# RFC 4493 test key and messages.
K = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
M64 = bytes.fromhex(
    "6bc1bee22e409f96e93d7e117393172a"
    "ae2d8a571e03ac9c9eb76fac45af8e51"
    "30c81c46a35ce411e5fbc1191a0a52ef"
    "f69f2445df4f9b17ad2b417be66c3710"
)


class TestCmacVectors:
    def test_subkeys(self):
        k1, k2 = cmac_subkeys(K)
        assert k1.hex() == "fbeed618357133667c85e08f7236a8de"
        assert k2.hex() == "f7ddac306ae266ccf90bc11ee46d513b"

    def test_example_1_empty(self):
        assert cmac(K, b"").hex() == \
            "bb1d6929e95937287fa37d129b756746"

    def test_example_2_one_block(self):
        assert cmac(K, M64[:16]).hex() == \
            "070a16b46b4d4144f79bdd9dd04a287c"

    def test_example_3_forty_bytes(self):
        assert cmac(K, M64[:40]).hex() == \
            "dfa66747de9ae63030ca32611497c827"

    def test_example_4_four_blocks(self):
        assert cmac(K, M64).hex() == \
            "51f0bebf7e3b9d92fc49741779363cfe"


class TestCmacProperties:
    def test_verify_accepts_genuine(self):
        tag = cmac(K, M64[:40])
        assert cmac_verify(K, M64[:40], tag)

    def test_verify_rejects_tampered_message(self):
        tag = cmac(K, M64[:40])
        tampered = bytes([M64[0] ^ 1]) + M64[1:40]
        assert not cmac_verify(K, tampered, tag)

    def test_verify_rejects_tampered_tag(self):
        tag = bytearray(cmac(K, M64[:16]))
        tag[15] ^= 0x01
        assert not cmac_verify(K, M64[:16], bytes(tag))

    def test_verify_rejects_wrong_length_tag(self):
        assert not cmac_verify(K, b"x", b"short")

    def test_length_extension_resistant_shape(self):
        # Padding discipline: "ab" and "ab\x80" must not collide.
        assert cmac(K, b"ab") != cmac(K, b"ab\x80")

    def test_different_keys_differ(self):
        assert cmac(K, b"hello") != cmac(bytes(16), b"hello")

    def test_every_length_mod_block(self):
        tags = {cmac(K, M64[:n]) for n in range(33)}
        assert len(tags) == 33  # no collisions across lengths


class TestKeyWrapVectors:
    KEK = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
    CEK = bytes.fromhex("00112233445566778899aabbccddeeff")

    def test_rfc3394_wrap_128_with_128(self):
        wrapped = key_wrap(self.KEK, self.CEK)
        assert wrapped.hex() == (
            "1fa68b0a8112b447aef34bd8fb5a7b82"
            "9d3e862371d2cfe5"
        )

    def test_unwrap_round_trip(self):
        assert key_unwrap(self.KEK, key_wrap(self.KEK, self.CEK)) == \
            self.CEK

    def test_longer_key_material(self):
        material = bytes(range(32))
        wrapped = key_wrap(self.KEK, material)
        assert len(wrapped) == 40
        assert key_unwrap(self.KEK, wrapped) == material

    def test_wrong_kek_detected(self):
        wrapped = key_wrap(self.KEK, self.CEK)
        with pytest.raises(IntegrityError):
            key_unwrap(bytes(16), wrapped)

    def test_tamper_detected(self):
        wrapped = bytearray(key_wrap(self.KEK, self.CEK))
        wrapped[10] ^= 0x40
        with pytest.raises(IntegrityError):
            key_unwrap(self.KEK, bytes(wrapped))

    def test_iv_constant(self):
        assert KEY_WRAP_IV == bytes([0xA6] * 8)

    def test_input_validation(self):
        with pytest.raises(ValueError):
            key_wrap(self.KEK, bytes(12))  # too short
        with pytest.raises(ValueError):
            key_wrap(self.KEK, bytes(20))  # not 8-aligned
        with pytest.raises(ValueError):
            key_unwrap(self.KEK, bytes(16))  # too short to unwrap
