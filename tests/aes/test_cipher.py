"""Tests for the behavioral Rijndael cipher against published vectors."""

import pytest

from repro.aes.cipher import (
    AES128,
    Rijndael,
    decrypt_block,
    encrypt_block,
    num_rounds,
    schedule_trace,
)
from repro.aes.vectors import ALL_VECTORS


class TestKnownAnswers:
    @pytest.mark.parametrize("vector", ALL_VECTORS,
                             ids=[v.name for v in ALL_VECTORS])
    def test_encrypt(self, vector):
        assert encrypt_block(vector.key, vector.plaintext) == \
            vector.ciphertext

    @pytest.mark.parametrize("vector", ALL_VECTORS,
                             ids=[v.name for v in ALL_VECTORS])
    def test_decrypt(self, vector):
        assert decrypt_block(vector.key, vector.ciphertext) == \
            vector.plaintext


class TestRoundCounts:
    def test_aes_round_counts(self):
        assert num_rounds(16, 16) == 10
        assert num_rounds(16, 24) == 12
        assert num_rounds(16, 32) == 14

    def test_rijndael_wide_blocks(self):
        assert num_rounds(24, 16) == 12
        assert num_rounds(32, 16) == 14
        assert num_rounds(32, 32) == 14

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            num_rounds(20, 16)
        with pytest.raises(ValueError):
            num_rounds(16, 20)


class TestRijndaelWideBlock:
    """The full Rijndael family (Nb = 6, 8) round-trips."""

    @pytest.mark.parametrize("block_bytes", [24, 32])
    @pytest.mark.parametrize("key_bytes", [16, 24, 32])
    def test_round_trip(self, block_bytes, key_bytes, rng):
        key = bytes(rng.randrange(256) for _ in range(key_bytes))
        block = bytes(rng.randrange(256) for _ in range(block_bytes))
        cipher = Rijndael(key, block_bytes=block_bytes)
        assert cipher.decrypt_block(cipher.encrypt_block(block)) == block

    def test_block_size_enforced(self):
        cipher = Rijndael(bytes(16), block_bytes=24)
        with pytest.raises(ValueError):
            cipher.encrypt_block(bytes(16))

    def test_rounds_property(self):
        assert Rijndael(bytes(32), block_bytes=24).rounds == 14


class TestAES128Class:
    def test_rejects_non_128_key(self):
        with pytest.raises(ValueError):
            AES128(bytes(24))

    def test_round_keys_exposed(self, fips_key):
        keys = AES128(fips_key).round_keys
        assert len(keys) == 11
        assert keys[0] == fips_key

    def test_round_keys_list_is_a_copy(self, fips_key):
        aes = AES128(fips_key)
        aes.round_keys.clear()
        assert len(aes.round_keys) == 11

    def test_encryption_is_deterministic(self, fips_key, fips_plaintext):
        aes = AES128(fips_key)
        first = aes.encrypt_block(fips_plaintext)
        assert aes.encrypt_block(fips_plaintext) == first

    def test_different_keys_differ(self, fips_plaintext):
        a = AES128(bytes(16)).encrypt_block(fips_plaintext)
        b = AES128(bytes([1] * 16)).encrypt_block(fips_plaintext)
        assert a != b


class TestTraceHooks:
    def test_schedule_has_expected_shape(self):
        lines = schedule_trace(bytes(16), bytes(16))
        # 1 initial add_key + 9 full rounds x 4 + last round x 3.
        assert len(lines) == 1 + 9 * 4 + 3

    def test_last_round_skips_mix_column(self):
        lines = schedule_trace(bytes(16), bytes(16))
        round10 = [ln for ln in lines if ln.startswith("round 10")]
        assert [ln.split(": ")[1] for ln in round10] == [
            "byte_sub", "shift_row", "add_key",
        ]

    def test_function_order_within_round(self):
        lines = schedule_trace(bytes(16), bytes(16))
        round1 = [ln.split(": ")[1] for ln in lines
                  if ln.startswith("round  1")]
        assert round1 == ["byte_sub", "shift_row", "mix_column", "add_key"]

    def test_decrypt_trace_order(self, fips_key, fips_ciphertext):
        calls = []
        AES128(fips_key).decrypt_block(
            fips_ciphertext, trace=lambda r, n, s: calls.append((r, n))
        )
        # Paper §3: decryption order is Add Key, IMix Column,
        # IShift Row, IByte Sub; the first decrypt round (10) skips
        # IMix Column.
        assert calls[0] == (10, "add_key")
        assert calls[1] == (10, "ishift_row")
        assert calls[2] == (10, "ibyte_sub")
        assert calls[3] == (9, "add_key")
        assert calls[4] == (9, "imix_column")
        assert calls[-1] == (0, "add_key")

    def test_intermediate_state_matches_fips(self, fips_key,
                                             fips_plaintext):
        # FIPS-197 Appendix B: state after round 1's MixColumns.
        seen = {}
        AES128(fips_key).encrypt_block(
            fips_plaintext,
            trace=lambda r, n, s: seen.setdefault((r, n), s),
        )
        assert seen[(1, "mix_column")].to_bytes().hex() == \
            "046681e5e0cb199a48f8d37a2806264c"
        assert seen[(1, "add_key")].to_bytes().hex() == \
            "a49c7ff2689f352b6b5bea43026a5049"


class TestRandomRoundTrips:
    def test_many_random_round_trips(self, rng):
        for _ in range(25):
            key = bytes(rng.randrange(256) for _ in range(16))
            block = bytes(rng.randrange(256) for _ in range(16))
            assert decrypt_block(key, encrypt_block(key, block)) == block

    def test_avalanche_on_plaintext_bit(self, fips_key, fips_plaintext):
        base = encrypt_block(fips_key, fips_plaintext)
        flipped = bytearray(fips_plaintext)
        flipped[0] ^= 0x01
        other = encrypt_block(fips_key, bytes(flipped))
        differing = sum(
            bin(a ^ b).count("1") for a, b in zip(base, other)
        )
        # A healthy block cipher flips ~half the 128 output bits.
        assert 40 <= differing <= 90

    def test_avalanche_on_key_bit(self, fips_key, fips_plaintext):
        base = encrypt_block(fips_key, fips_plaintext)
        key2 = bytearray(fips_key)
        key2[15] ^= 0x80
        other = encrypt_block(bytes(key2), fips_plaintext)
        differing = sum(
            bin(a ^ b).count("1") for a, b in zip(base, other)
        )
        assert 40 <= differing <= 90
