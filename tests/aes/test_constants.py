"""Tests for the derived Rijndael constant tables (paper Fig. 5)."""

from repro.aes.constants import (
    AFFINE_CONSTANT,
    INV_SBOX,
    RCON,
    SBOX,
    SBOX_ROM_BITS,
    sbox_rows,
)
from repro.gf.galois import gf_inv


class TestSbox:
    def test_known_corner_values(self):
        # FIPS-197 Figure 7 corners and the classic worked example.
        assert SBOX[0x00] == 0x63
        assert SBOX[0x01] == 0x7C
        assert SBOX[0x53] == 0xED
        assert SBOX[0xFF] == 0x16

    def test_full_first_row_matches_fips(self):
        expected = [0x63, 0x7C, 0x77, 0x7B, 0xF2, 0x6B, 0x6F, 0xC5,
                    0x30, 0x01, 0x67, 0x2B, 0xFE, 0xD7, 0xAB, 0x76]
        assert list(SBOX[:16]) == expected

    def test_last_row_matches_fips(self):
        expected = [0x8C, 0xA1, 0x89, 0x0D, 0xBF, 0xE6, 0x42, 0x68,
                    0x41, 0x99, 0x2D, 0x0F, 0xB0, 0x54, 0xBB, 0x16]
        assert list(SBOX[0xF0:]) == expected

    def test_sbox_is_a_permutation(self):
        assert sorted(SBOX) == list(range(256))

    def test_sbox_has_no_fixed_points(self):
        # A design property of Rijndael: S(x) != x and S(x) != ~x.
        for x in range(256):
            assert SBOX[x] != x
            assert SBOX[x] != (x ^ 0xFF)

    def test_inverse_sbox_inverts(self):
        for x in range(256):
            assert INV_SBOX[SBOX[x]] == x
            assert SBOX[INV_SBOX[x]] == x

    def test_inv_sbox_known_values(self):
        assert INV_SBOX[0x00] == 0x52
        assert INV_SBOX[0x63] == 0x00

    def test_affine_of_zero_is_constant(self):
        # inv(0) = 0 and the affine transform of 0 is the constant.
        assert SBOX[0] == AFFINE_CONSTANT

    def test_sbox_derivation_from_field_inverse(self):
        # Spot-check that SBOX[x] depends on gf_inv(x): S(x) of the
        # inverse pair 0x53/0xCA must relate through the affine map
        # applied to swapped inverses.
        assert gf_inv(0x53) == 0xCA
        # Derivation sanity: recompute one entry longhand.
        inv = gf_inv(0xAB)
        bits = [(inv >> i) & 1 for i in range(8)]
        out = 0
        for i in range(8):
            b = (bits[i] ^ bits[(i + 4) % 8] ^ bits[(i + 5) % 8]
                 ^ bits[(i + 6) % 8] ^ bits[(i + 7) % 8])
            out |= b << i
        assert SBOX[0xAB] == out ^ AFFINE_CONSTANT


class TestRcon:
    def test_first_constants(self):
        assert RCON[1] == 0x01
        assert RCON[2] == 0x02
        assert RCON[3] == 0x04
        assert RCON[8] == 0x80

    def test_reduction_kicks_in_at_nine(self):
        assert RCON[9] == 0x1B
        assert RCON[10] == 0x36

    def test_rcon_zero_unused(self):
        assert RCON[0] == 0

    def test_covers_all_rijndael_schedules(self):
        # AES-128 needs 10; Rijndael Nb=8/Nk=4 needs ceil(56/4)=14.
        assert len(RCON) >= 15


class TestSboxGeometry:
    def test_rom_bits(self):
        # Paper §3: "Each S-box uses 2048 [bits] of memory".
        assert SBOX_ROM_BITS == 2048

    def test_rows_form_16x16_grid(self):
        rows = sbox_rows()
        assert len(rows) == 16
        assert all(len(row) == 16 for row in rows)

    def test_rows_flatten_back_to_sbox(self):
        flat = [v for row in sbox_rows() for v in row]
        assert flat == list(SBOX)
