"""Tests for the block modes, including NIST SP 800-38A vectors."""

import pytest

from repro.aes.cipher import AES128
from repro.aes.modes import (
    cbc_decrypt,
    cbc_encrypt,
    cfb_decrypt,
    cfb_encrypt,
    ctr_keystream,
    ctr_xcrypt,
    ecb_decrypt,
    ecb_encrypt,
    ofb_xcrypt,
    pkcs7_pad,
    pkcs7_unpad,
)
from repro.aes.vectors import (
    SP800_38A_CBC128_CIPHERTEXT,
    SP800_38A_CBC128_IV,
    SP800_38A_ECB128_CIPHERTEXT,
    SP800_38A_ECB128_KEY,
    SP800_38A_ECB128_PLAINTEXT,
)

KEY = SP800_38A_ECB128_KEY
PT = SP800_38A_ECB128_PLAINTEXT
IV = SP800_38A_CBC128_IV


class TestPadding:
    def test_pad_always_adds(self):
        assert pkcs7_pad(bytes(16)) != bytes(16)
        assert len(pkcs7_pad(bytes(16))) == 32

    def test_pad_round_trip(self):
        for length in range(0, 33):
            data = bytes(range(length % 256))[:length]
            assert pkcs7_unpad(pkcs7_pad(data)) == data

    def test_unpad_rejects_bad_padding(self):
        with pytest.raises(ValueError):
            pkcs7_unpad(bytes(15) + b"\x03")

    def test_unpad_rejects_empty(self):
        with pytest.raises(ValueError):
            pkcs7_unpad(b"")

    def test_unpad_rejects_unaligned(self):
        with pytest.raises(ValueError):
            pkcs7_unpad(bytes(17))

    def test_pad_block_bounds(self):
        with pytest.raises(ValueError):
            pkcs7_pad(b"x", block=0)

    def test_unpad_block_bounds(self):
        with pytest.raises(ValueError):
            pkcs7_unpad(bytes(16), block=0)
        with pytest.raises(ValueError):
            pkcs7_unpad(bytes(300), block=300)

    def test_unpad_rejects_mid_pad_corruption(self):
        padded = bytearray(pkcs7_pad(bytes(12)))  # ...04 04 04 04
        padded[-3] ^= 0xFF
        with pytest.raises(ValueError):
            pkcs7_unpad(bytes(padded))

    def test_unpad_rejects_oversized_pad_byte(self):
        with pytest.raises(ValueError):
            pkcs7_unpad(bytes(15) + b"\x11")  # 0x11 > block of 16

    def test_unpad_rejects_zero_pad_byte(self):
        with pytest.raises(ValueError):
            pkcs7_unpad(bytes(16))


class TestECB:
    def test_sp800_38a_vector(self):
        assert ecb_encrypt(KEY, PT) == SP800_38A_ECB128_CIPHERTEXT

    def test_round_trip(self):
        assert ecb_decrypt(KEY, ecb_encrypt(KEY, PT)) == PT

    def test_identical_blocks_leak(self):
        # The well-known ECB weakness — also why the examples use CBC.
        two = ecb_encrypt(KEY, bytes(32))
        assert two[:16] == two[16:]

    def test_rejects_unaligned(self):
        with pytest.raises(ValueError):
            ecb_encrypt(KEY, bytes(20))


class TestCBC:
    def test_sp800_38a_vector(self):
        assert cbc_encrypt(KEY, IV, PT) == SP800_38A_CBC128_CIPHERTEXT

    def test_decrypt_vector(self):
        assert cbc_decrypt(KEY, IV, SP800_38A_CBC128_CIPHERTEXT) == PT

    def test_round_trip(self):
        assert cbc_decrypt(KEY, IV, cbc_encrypt(KEY, IV, PT)) == PT

    def test_identical_blocks_hidden(self):
        two = cbc_encrypt(KEY, IV, bytes(32))
        assert two[:16] != two[16:]

    def test_iv_must_be_block_sized(self):
        with pytest.raises(ValueError):
            cbc_encrypt(KEY, bytes(8), bytes(16))

    def test_first_block_depends_on_iv(self):
        a = cbc_encrypt(KEY, bytes(16), bytes(16))
        b = cbc_encrypt(KEY, bytes([1] + [0] * 15), bytes(16))
        assert a[:16] != b[:16]


class TestCTR:
    def test_symmetric(self):
        nonce = bytes(8)
        ct = ctr_xcrypt(KEY, nonce, PT)
        assert ctr_xcrypt(KEY, nonce, ct) == PT

    def test_handles_partial_blocks(self):
        nonce = bytes(8)
        data = b"seventeen bytes!!"
        assert len(data) == 17
        assert ctr_xcrypt(KEY, nonce, ctr_xcrypt(KEY, nonce, data)) == data

    def test_keystream_is_counter_encryptions(self):
        nonce = b"\x01" * 8
        aes = AES128(KEY)
        stream = ctr_keystream(KEY, nonce, 2)
        assert stream[:16] == aes.encrypt_block(nonce + bytes(8))
        assert stream[16:] == aes.encrypt_block(
            nonce + (1).to_bytes(8, "big")
        )

    def test_nonce_length_checked(self):
        with pytest.raises(ValueError):
            ctr_keystream(KEY, bytes(12), 1)

    def test_negative_blocks_rejected(self):
        with pytest.raises(ValueError):
            ctr_keystream(KEY, bytes(8), -1)

    def test_only_uses_encrypt_direction(self):
        # CTR decryption never calls the block decrypt — this is why
        # the paper's smallest (encrypt-only) device suffices for CTR
        # links; asserted structurally via the keystream equality above
        # and round-trip here.
        nonce = bytes(8)
        assert ctr_xcrypt(KEY, nonce, ctr_xcrypt(KEY, nonce, PT)) == PT


class TestCFB:
    def test_round_trip(self):
        assert cfb_decrypt(KEY, IV, cfb_encrypt(KEY, IV, PT)) == PT

    def test_first_block_formula(self):
        ct = cfb_encrypt(KEY, IV, PT)
        expected = bytes(
            p ^ s for p, s in zip(PT[:16], AES128(KEY).encrypt_block(IV))
        )
        assert ct[:16] == expected

    def test_rejects_unaligned(self):
        with pytest.raises(ValueError):
            cfb_encrypt(KEY, IV, bytes(20))


class TestOFB:
    def test_symmetric(self):
        ct = ofb_xcrypt(KEY, IV, PT)
        assert ofb_xcrypt(KEY, IV, ct) == PT

    def test_partial_tail(self):
        data = bytes(range(21))
        assert ofb_xcrypt(KEY, IV, ofb_xcrypt(KEY, IV, data)) == data

    def test_keystream_independent_of_data(self):
        a = ofb_xcrypt(KEY, IV, bytes(32))
        b = ofb_xcrypt(KEY, IV, bytes([0xFF] * 32))
        # keystream = ciphertext xor plaintext must match.
        ka = bytes(x ^ 0x00 for x in a)
        kb = bytes(x ^ 0xFF for x in b)
        assert ka == kb
