"""Tests for the T-table software implementation."""

import pytest

from repro.aes.cipher import AES128
from repro.aes.fast import FastAES128, T0, T1, T2, T3, \
    t_table_memory_bits
from repro.aes.vectors import ALL_VECTORS
from tests.conftest import random_block, random_key


class TestTables:
    def test_t0_structure(self):
        # T0[x] packs (2*S, S, S, 3*S).
        from repro.aes.constants import SBOX
        from repro.gf.galois import gf_mul

        for x in (0, 0x53, 0xFF):
            s = SBOX[x]
            expected = ((gf_mul(s, 2) << 24) | (s << 16) | (s << 8)
                        | gf_mul(s, 3))
            assert T0[x] == expected

    def test_rotation_relationship(self):
        def rot8(w):
            return ((w >> 8) | (w << 24)) & 0xFFFFFFFF

        for x in (1, 0x7E, 0xC4):
            assert T1[x] == rot8(T0[x])
            assert T2[x] == rot8(T1[x])
            assert T3[x] == rot8(T2[x])

    def test_memory_footprint(self):
        assert t_table_memory_bits() == 32768


class TestKnownAnswers:
    @pytest.mark.parametrize(
        "vector", [v for v in ALL_VECTORS if len(v.key) == 16],
        ids=lambda v: v.name,
    )
    def test_fips_vectors(self, vector):
        assert FastAES128(vector.key).encrypt_block(vector.plaintext) \
            == vector.ciphertext


class TestEquivalence:
    def test_matches_straightforward_model(self, rng):
        for _ in range(20):
            key = random_key(rng)
            block = random_block(rng)
            assert FastAES128(key).encrypt_block(block) == \
                AES128(key).encrypt_block(block)

    def test_ecb_helper(self, rng):
        key = random_key(rng)
        data = bytes(rng.randrange(256) for _ in range(64))
        fast = FastAES128(key)
        slow = AES128(key)
        expected = b"".join(
            slow.encrypt_block(data[i:i + 16])
            for i in range(0, 64, 16)
        )
        assert fast.encrypt_ecb(data) == expected


class TestValidation:
    def test_key_length(self):
        with pytest.raises(ValueError):
            FastAES128(bytes(24))

    def test_block_length(self):
        with pytest.raises(ValueError):
            FastAES128(bytes(16)).encrypt_block(bytes(15))

    def test_ecb_alignment(self):
        with pytest.raises(ValueError):
            FastAES128(bytes(16)).encrypt_ecb(bytes(20))
