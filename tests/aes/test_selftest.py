"""Tests for the power-on self test."""


from repro.aes.selftest import CheckResult, SelfTestReport, run_self_test


class TestSelfTest:
    REPORT = run_self_test()

    def test_all_pass(self):
        assert self.REPORT.passed, self.REPORT.render()

    def test_check_inventory(self):
        names = [check.name for check in self.REPORT.checks]
        assert names == [
            "constant tables", "block cipher", "modes of operation",
            "key schedule", "hardware model",
        ]

    def test_fast_mode_skips_hardware(self):
        fast = run_self_test(include_hardware=False)
        names = [check.name for check in fast.checks]
        assert "hardware model" not in names
        assert fast.passed

    def test_render(self):
        text = self.REPORT.render()
        assert text.startswith("self test: PASS")
        assert "[ok ]" in text
        assert "50-cycle latency" in text

    def test_elapsed_recorded(self):
        assert self.REPORT.elapsed_s > 0


class TestFailureReporting:
    def test_failures_reported_not_raised(self, monkeypatch):
        # Sabotage one vector; the POST must report the failure
        # gracefully rather than raising.
        import repro.aes.vectors as vectors

        broken = vectors.KnownAnswer(
            name="broken", key=bytes(16), plaintext=bytes(16),
            ciphertext=bytes(16), source="sabotage",
        )
        monkeypatch.setattr(vectors, "ALL_VECTORS",
                            vectors.ALL_VECTORS + (broken,))
        report = run_self_test(include_hardware=False)
        assert not report.passed
        failed = [c for c in report.checks if not c.passed]
        assert [c.name for c in failed] == ["block cipher"]
        assert "FAIL" in report.render()

    def test_report_object_semantics(self):
        report = SelfTestReport(
            checks=[CheckResult("a", True), CheckResult("b", False)]
        )
        assert not report.passed
