"""Tests for signals and two-phase registers."""

import pytest

from repro.rtl.signal import Register, Signal, SignalError


class TestSignal:
    def test_initial_value(self):
        assert Signal("s", 8, reset=0x42).value == 0x42

    def test_assignment(self):
        sig = Signal("s", 8)
        sig.value = 0xFF
        assert sig.value == 0xFF

    def test_width_enforced(self):
        sig = Signal("s", 4)
        with pytest.raises(SignalError):
            sig.value = 16

    def test_negative_rejected(self):
        sig = Signal("s", 4)
        with pytest.raises(SignalError):
            sig.value = -1

    def test_non_int_rejected(self):
        sig = Signal("s", 4)
        with pytest.raises(SignalError):
            sig.value = "3"  # type: ignore[assignment]

    def test_zero_width_rejected(self):
        with pytest.raises(SignalError):
            Signal("s", 0)

    def test_bit_access(self):
        sig = Signal("s", 8, reset=0b10100101)
        assert sig.bit(0) == 1
        assert sig.bit(1) == 0
        assert sig.bit(7) == 1

    def test_bit_out_of_range(self):
        with pytest.raises(SignalError):
            Signal("s", 8).bit(8)

    def test_slice_access(self):
        sig = Signal("s", 8, reset=0xA5)
        assert sig.bits(7, 4) == 0xA
        assert sig.bits(3, 0) == 0x5

    def test_bad_slice(self):
        with pytest.raises(SignalError):
            Signal("s", 8).bits(3, 5)

    def test_repr_contains_name(self):
        assert "clk" in repr(Signal("clk", 1))


class TestRegister:
    def test_value_not_directly_writable(self):
        reg = Register("r", 8)
        with pytest.raises(SignalError):
            reg.value = 1  # type: ignore[misc]

    def test_next_then_commit(self):
        reg = Register("r", 8)
        reg.next = 0x55
        assert reg.value == 0  # not yet visible
        assert reg.commit() is True
        assert reg.value == 0x55

    def test_commit_without_assignment_holds(self):
        reg = Register("r", 8, reset=7)
        assert reg.commit() is False
        assert reg.value == 7

    def test_commit_reports_no_change(self):
        reg = Register("r", 8, reset=9)
        reg.next = 9
        assert reg.commit() is False

    def test_next_property_reads_pending(self):
        reg = Register("r", 8)
        assert reg.next == 0
        reg.next = 3
        assert reg.next == 3
        assert reg.value == 0

    def test_last_write_wins(self):
        reg = Register("r", 8)
        reg.next = 1
        reg.next = 2
        reg.commit()
        assert reg.value == 2

    def test_width_checked_on_next(self):
        reg = Register("r", 4)
        with pytest.raises(SignalError):
            reg.next = 16

    def test_reset(self):
        reg = Register("r", 8, reset=0xAA)
        reg.next = 0x55
        reg.commit()
        reg.next = 0x11
        reg.reset()
        assert reg.value == 0xAA
        # Pending write is discarded by reset.
        assert reg.commit() is False
        assert reg.value == 0xAA

    def test_deposit_bypasses_clock(self):
        reg = Register("r", 8)
        reg.deposit(0x7F)
        assert reg.value == 0x7F

    def test_deposit_checks_width(self):
        with pytest.raises(SignalError):
            Register("r", 4).deposit(0x10)
