"""Tests for the cycle-based simulator."""

import pytest

from repro.rtl.signal import Signal, SignalError
from repro.rtl.simulator import Simulator


def make_counter(sim: Simulator, width: int = 8):
    count = sim.register("count", width)
    sim.add_clocked(lambda: setattr(count, "next",
                                    (count.value + 1) % (1 << width)))
    return count


class TestStepping:
    def test_single_step(self):
        sim = Simulator()
        count = make_counter(sim)
        sim.step()
        assert count.value == 1
        assert sim.cycle == 1

    def test_multi_step(self):
        sim = Simulator()
        count = make_counter(sim)
        sim.step(10)
        assert count.value == 10

    def test_negative_steps_rejected(self):
        with pytest.raises(ValueError):
            Simulator().step(-1)

    def test_register_to_register_transfer_is_synchronous(self):
        # Classic shift-register check: both stages observe pre-edge
        # values, so the pipeline delays by exactly one per stage.
        sim = Simulator()
        a = sim.register("a", 8)
        b = sim.register("b", 8)
        inp = Signal("in", 8)

        def stage():
            a.next = inp.value
            b.next = a.value

        sim.add_clocked(stage)
        inp.value = 0x11
        sim.step()
        assert (a.value, b.value) == (0x11, 0x00)
        sim.step()
        assert b.value == 0x11

    def test_process_order_does_not_matter(self):
        # Same shift register with processes registered in both orders.
        for order in (False, True):
            sim = Simulator()
            a = sim.register("a", 8)
            b = sim.register("b", 8)
            inp = Signal("in", 8, reset=5)
            procs = [
                lambda: setattr(a, "next", inp.value),
                lambda: setattr(b, "next", a.value),
            ]
            if order:
                procs.reverse()
            for proc in procs:
                sim.add_clocked(proc)
            sim.step(2)
            assert b.value == 5


class TestCombinational:
    def test_comb_runs_after_commit(self):
        sim = Simulator()
        count = make_counter(sim)
        doubled = Signal("doubled", 16)
        sim.add_comb(lambda: setattr(doubled, "value", count.value * 2))
        sim.step(3)
        assert doubled.value == 6

    def test_comb_chain_settles(self):
        sim = Simulator()
        count = make_counter(sim)
        a = Signal("a", 16)
        b = Signal("b", 16)
        # Registered in dependency-reversed order on purpose.
        sim.add_comb(lambda: setattr(b, "value", a.value + 1))
        sim.add_comb(lambda: setattr(a, "value", count.value + 1))
        sim.watch(a, b)
        sim.step()
        assert (a.value, b.value) == (2, 3)

    def test_settle_without_step(self):
        sim = Simulator()
        inp = Signal("in", 8)
        out = Signal("out", 8)
        sim.add_comb(lambda: setattr(out, "value", inp.value ^ 0xFF))
        inp.value = 0x0F
        sim.settle()
        assert out.value == 0xF0
        assert sim.cycle == 0

    def test_combinational_loop_detected(self):
        sim = Simulator()
        a = Signal("a", 8)
        sim.add_comb(lambda: setattr(a, "value", (a.value + 1) & 0xFF))
        sim.watch(a)
        with pytest.raises(SignalError):
            sim.step()


class TestRunUntil:
    def test_runs_to_condition(self):
        sim = Simulator()
        count = make_counter(sim)
        consumed = sim.run_until(lambda: count.value == 7)
        assert consumed == 7
        assert count.value == 7

    def test_timeout(self):
        sim = Simulator()
        make_counter(sim)
        with pytest.raises(TimeoutError):
            sim.run_until(lambda: False, max_cycles=5)

    def test_immediate_condition_consumes_nothing(self):
        sim = Simulator()
        assert sim.run_until(lambda: True) == 0


class TestReset:
    def test_reset_restores_registers(self):
        sim = Simulator()
        count = make_counter(sim)
        sim.step(5)
        sim.reset()
        assert count.value == 0

    def test_adopt_deduplicates(self):
        sim = Simulator()
        reg = sim.register("r", 4)
        sim.adopt([reg, reg])
        assert sim.registers.count(reg) == 1

    def test_trace_hook_called_per_cycle(self):
        sim = Simulator()
        make_counter(sim)
        seen = []
        sim.add_trace_hook(seen.append)
        sim.step(3)
        assert seen == [1, 2, 3]
