"""Tests for VCD waveform export."""

import pytest

from repro.rtl.signal import Signal
from repro.rtl.simulator import Simulator
from repro.rtl.trace import Trace
from repro.rtl.vcd import (
    count_vcd_changes,
    parse_vcd_header,
    trace_to_vcd,
)


def counter_trace(cycles: int = 6):
    sim = Simulator()
    count = sim.register("count", 8)
    flag = Signal("flag", 1)
    sim.add_clocked(lambda: setattr(count, "next",
                                    (count.value + 1) & 0xFF))
    sim.add_comb(lambda: setattr(flag, "value", count.value & 1))
    trace = Trace(sim, [count, flag])
    sim.step(cycles)
    return trace


class TestEmission:
    def test_header_structure(self):
        text = trace_to_vcd(counter_trace())
        assert "$timescale 1 ns $end" in text
        assert "$enddefinitions $end" in text
        assert "$var reg 8" in text
        assert "$var wire 1" in text

    def test_round_trip_header(self):
        text = trace_to_vcd(counter_trace(), timescale="1 ps")
        timescale, variables = parse_vcd_header(text)
        assert timescale == "1 ps"
        assert dict(variables) == {"count": 8, "flag": 1}

    def test_timestamps_scale_with_clock(self):
        text = trace_to_vcd(counter_trace(3), clock_ns=14)
        assert "#14" in text and "#28" in text and "#42" in text

    def test_only_changes_emitted(self):
        sim = Simulator()
        static = sim.register("static", 8, reset=5)
        count = sim.register("count", 4)
        sim.add_clocked(lambda: setattr(count, "next",
                                        (count.value + 1) & 0xF))
        sim.add_clocked(lambda: setattr(static, "next", 5))
        trace = Trace(sim, [static, count])
        sim.step(5)
        text = trace_to_vcd(trace)
        # static changes once (initial dump), count 5 times.
        assert count_vcd_changes(text) == 1 + 5

    def test_scalar_format(self):
        text = trace_to_vcd(counter_trace(2))
        lines = [ln for ln in text.splitlines()
                 if ln and ln[0] in "01" and len(ln) == 2]
        assert lines  # scalar changes use "<value><id>" format

    def test_vector_format(self):
        text = trace_to_vcd(counter_trace(2))
        assert any(ln.startswith("b") for ln in text.splitlines())

    def test_module_name(self):
        text = trace_to_vcd(counter_trace(1), module="dut")
        assert "$scope module dut $end" in text


class TestParser:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            parse_vcd_header("")

    def test_rejects_no_variables(self):
        with pytest.raises(ValueError):
            parse_vcd_header("$enddefinitions $end\n")


class TestCoreWaveform:
    def test_core_run_dumps(self):
        from repro.ip.control import Variant
        from repro.ip.testbench import Testbench

        bench = Testbench(Variant.ENCRYPT)
        trace = Trace(bench.simulator,
                      [bench.core.data_ok, bench.core.step,
                       bench.core.round])
        bench.load_key(bytes(16))
        bench.encrypt(bytes(16))
        text = trace_to_vcd(trace, clock_ns=14)
        timescale, variables = parse_vcd_header(text)
        assert dict(variables)["aes_data_ok"] == 1
        # The data_ok pulse appears exactly once (one '1!'-style line
        # for its identifier going high).
        ok_id = next(
            line.split()[3] for line in text.splitlines()
            if line.startswith("$var") and "aes_data_ok" in line
        )
        rises = [ln for ln in text.splitlines() if ln == f"1{ok_id}"]
        assert len(rises) == 1


class TestRealRunRoundTrip:
    """Dump a real encrypt run and read the waveform back: the gap
    between the ``wr_data`` capture edge and the ``data_ok`` strobe
    must equal the core's declared block latency."""

    def _ids(self, text):
        ids = {}
        for line in text.splitlines():
            if line.startswith("$var"):
                parts = line.split()
                ids[parts[4]] = parts[3]
            elif line.startswith("$enddefinitions"):
                break
        return ids

    def _rise_times(self, text, ident):
        times, now = [], None
        in_defs = True
        for line in text.splitlines():
            line = line.strip()
            if in_defs:
                in_defs = not line.startswith("$enddefinitions")
                continue
            if line.startswith("#"):
                now = int(line[1:])
            elif line == f"1{ident}":
                times.append(now)
        return times

    def test_encrypt_latency_visible_in_waveform(self):
        from repro.ip.control import Variant
        from repro.ip.testbench import Testbench

        bench = Testbench(Variant.ENCRYPT)
        core = bench.core
        trace = Trace(bench.simulator,
                      [core.wr_data, core.data_ok])
        bench.load_key(bytes(range(16)))
        _, latency = bench.process_block(
            bytes.fromhex("00112233445566778899aabbccddeeff"))
        assert latency == core.latency_cycles == 50

        text = trace_to_vcd(trace, clock_ns=14)
        timescale, variables = parse_vcd_header(text)
        assert timescale == "1 ns"
        assert dict(variables)["aes_data_ok"] == 1

        ids = self._ids(text)
        (capture,) = self._rise_times(text, ids["aes_wr_data"])
        (strobe,) = self._rise_times(text, ids["aes_data_ok"])
        assert strobe - capture == latency * 14

    def test_two_blocks_strobe_twice(self):
        from repro.ip.control import Variant
        from repro.ip.testbench import Testbench

        bench = Testbench(Variant.ENCRYPT)
        trace = Trace(bench.simulator, [bench.core.data_ok])
        bench.load_key(bytes(range(16)))
        bench.encrypt(bytes(16))
        bench.encrypt(bytes(16))
        text = trace_to_vcd(trace)
        ids = self._ids(text)
        assert len(self._rise_times(text, ids["aes_data_ok"])) == 2
        assert count_vcd_changes(text) >= 4  # two full strobes
