"""Tests for waveform capture and toggle counting."""

import pytest

from repro.rtl.signal import Signal
from repro.rtl.simulator import Simulator
from repro.rtl.trace import Trace


def counter_sim():
    sim = Simulator()
    count = sim.register("count", 8)
    sim.add_clocked(lambda: setattr(count, "next",
                                    (count.value + 1) & 0xFF))
    return sim, count


class TestSampling:
    def test_history_per_cycle(self):
        sim, count = counter_sim()
        trace = Trace(sim, [count])
        sim.step(4)
        assert trace.history("count") == [1, 2, 3, 4]
        assert trace.cycles == [1, 2, 3, 4]

    def test_value_at(self):
        sim, count = counter_sim()
        trace = Trace(sim, [count])
        sim.step(5)
        assert trace.value_at("count", 3) == 3

    def test_value_at_unsampled_cycle(self):
        sim, count = counter_sim()
        trace = Trace(sim, [count])
        sim.step(2)
        with pytest.raises(KeyError):
            trace.value_at("count", 9)

    def test_unknown_signal(self):
        sim, count = counter_sim()
        trace = Trace(sim, [count])
        with pytest.raises(KeyError):
            trace.history("nope")

    def test_needs_signals(self):
        sim, _ = counter_sim()
        with pytest.raises(ValueError):
            Trace(sim, [])

    def test_duplicate_names_rejected(self):
        sim, count = counter_sim()
        other = Signal("count", 4)
        with pytest.raises(ValueError):
            Trace(sim, [count, other])


class TestQueries:
    def test_first_cycle_where(self):
        sim, count = counter_sim()
        trace = Trace(sim, [count])
        sim.step(10)
        assert trace.first_cycle_where("count", 7) == 7

    def test_first_cycle_where_never(self):
        sim, count = counter_sim()
        trace = Trace(sim, [count])
        sim.step(3)
        with pytest.raises(LookupError):
            trace.first_cycle_where("count", 200)

    def test_toggle_count_counter(self):
        sim, count = counter_sim()
        trace = Trace(sim, [count])
        sim.step(4)
        # 1->2 flips 2 bits, 2->3 flips 1, 3->4 flips 3.
        assert trace.toggle_count("count") == 6

    def test_toggle_count_static_signal(self):
        sim, count = counter_sim()
        static = Signal("static", 8, reset=0xAA)
        trace = Trace(sim, [static])
        sim.step(5)
        assert trace.toggle_count("static") == 0

    def test_total_toggles_sums(self):
        sim, count = counter_sim()
        static = Signal("static", 8, reset=1)
        trace = Trace(sim, [count, static])
        sim.step(4)
        assert trace.total_toggles() == trace.toggle_count("count")


class TestRendering:
    def test_empty_trace(self):
        sim, count = counter_sim()
        trace = Trace(sim, [count])
        assert "empty" in trace.render()

    def test_render_contains_signal_names(self):
        sim, count = counter_sim()
        bit = Signal("flag", 1)
        sim.add_comb(lambda: setattr(bit, "value", count.value & 1))
        trace = Trace(sim, [count, bit])
        sim.step(6)
        art = trace.render()
        assert "count" in art and "flag" in art

    def test_render_limits_window(self):
        sim, count = counter_sim()
        trace = Trace(sim, [count])
        sim.step(100)
        art = trace.render(last=8)
        # Window shows the last 8 cycles (two header digits each).
        header = art.splitlines()[0]
        assert len(header.split()) == 8
