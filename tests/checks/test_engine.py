"""Rule-engine core: registry, config, findings, baseline."""

import json

import pytest

from repro.checks.baseline import Baseline, BaselineError
from repro.checks.engine import (
    KIND_SOURCE,
    CheckConfig,
    Finding,
    Location,
    Severity,
    iter_families,
    max_severity,
    registry,
    run_rules,
)


class TestSeverity:
    def test_ordering(self):
        assert Severity.ERROR > Severity.WARNING > Severity.NOTE

    def test_parse(self):
        assert Severity.parse("error") is Severity.ERROR
        assert Severity.parse(" Warning ") is Severity.WARNING

    def test_parse_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown severity"):
            Severity.parse("fatal")


class TestRegistry:
    def test_all_families_present(self):
        families = {r.family for r in registry().values()}
        assert {"ct", "drc", "fsm", "hdl", "struct"} <= families

    def test_every_rule_documents_itself(self):
        for rule_obj in registry().values():
            assert rule_obj.doc
            assert "." in rule_obj.id

    def test_iter_families_sorted(self):
        names = [family for family, _ in iter_families(registry())]
        assert names == sorted(names)


class TestCheckConfig:
    def test_default_enables_everything(self):
        config = CheckConfig()
        assert config.enabled("drc.undriven-net")
        assert config.enabled("ct.secret-branch")

    def test_disable_wins_over_enable(self):
        config = CheckConfig(enable=("*",), disable=("drc.*",))
        assert not config.enabled("drc.undriven-net")
        assert config.enabled("fsm.trap-state")

    def test_enable_pattern_restricts(self):
        config = CheckConfig(enable=("ct.*",))
        assert config.enabled("ct.raw-ecb")
        assert not config.enabled("drc.comb-loop")

    def test_severity_override(self):
        config = CheckConfig(
            severity_overrides={"ct.*": Severity.NOTE}
        )
        rule_obj = registry()["ct.secret-branch"]
        assert config.effective_severity(rule_obj) is Severity.NOTE

    def test_override_applied_to_findings(self):
        import ast

        from repro.checks.crypto_lint import SourceFile

        code = "def f(key):\n    if key[0]:\n        pass\n"
        source = SourceFile("x.py", ast.parse(code))
        findings = run_rules(
            {KIND_SOURCE: [source]},
            CheckConfig(severity_overrides={
                "ct.secret-branch": Severity.NOTE,
            }),
        )
        assert findings
        assert all(f.severity is Severity.NOTE for f in findings)


class TestFinding:
    def test_fingerprint_ignores_line(self):
        a = Finding("r.x", Severity.ERROR, "msg",
                    Location("f.py", 10, "obj"))
        b = Finding("r.x", Severity.ERROR, "msg",
                    Location("f.py", 99, "obj"))
        assert a.fingerprint() == b.fingerprint()

    def test_fingerprint_separates_rules(self):
        a = Finding("r.x", Severity.ERROR, "msg", Location("f.py"))
        b = Finding("r.y", Severity.ERROR, "msg", Location("f.py"))
        assert a.fingerprint() != b.fingerprint()

    def test_render(self):
        f = Finding("r.x", Severity.WARNING, "something",
                    Location("f.py", 3, "net"))
        assert f.render() == "f.py:3 (net): warning: [r.x] something"

    def test_max_severity(self):
        assert max_severity([]) is None
        findings = [
            Finding("a", Severity.NOTE, "m"),
            Finding("b", Severity.ERROR, "m"),
        ]
        assert max_severity(findings) is Severity.ERROR


class TestBaseline:
    def _finding(self, message="msg"):
        return Finding("r.x", Severity.WARNING, message,
                       Location("f.py", 1, "obj"))

    def test_round_trip(self, tmp_path):
        baseline = Baseline.from_findings([self._finding()])
        target = tmp_path / "b.json"
        baseline.save(target)
        loaded = Baseline.load(target)
        assert loaded.entries == baseline.entries
        # Audit context is preserved alongside the fingerprint.
        data = json.loads(target.read_text())
        assert data["version"] == 1
        assert data["suppressions"][0]["rule"] == "r.x"

    def test_split(self):
        suppressed_f = self._finding("old")
        active_f = self._finding("new")
        baseline = Baseline.from_findings([suppressed_f])
        active, suppressed = baseline.split([suppressed_f, active_f])
        assert active == [active_f]
        assert suppressed == [suppressed_f]

    def test_stale_entries(self):
        gone = self._finding("vanished")
        baseline = Baseline.from_findings([gone])
        assert baseline.stale_entries([]) == [gone.fingerprint()]
        assert baseline.stale_entries([gone]) == []

    def test_load_rejects_bad_json(self, tmp_path):
        target = tmp_path / "b.json"
        target.write_text("{nope")
        with pytest.raises(BaselineError, match="not valid JSON"):
            Baseline.load(target)

    def test_load_rejects_wrong_version(self, tmp_path):
        target = tmp_path / "b.json"
        target.write_text('{"version": 99, "suppressions": []}')
        with pytest.raises(BaselineError, match="version"):
            Baseline.load(target)

    def test_load_rejects_missing_fingerprint(self, tmp_path):
        target = tmp_path / "b.json"
        target.write_text('{"version": 1, "suppressions": [{}]}')
        with pytest.raises(BaselineError, match="fingerprint"):
            Baseline.load(target)

    def test_shipped_baseline_matches_tree(self):
        """The committed baseline only carries sanctioned warnings."""
        from repro.checks.runner import find_repo_root

        root = find_repo_root()
        baseline = Baseline.load(root / "lint-baseline.json")
        rules = {ctx["rule"] for ctx in baseline.entries.values()}
        # ct.secret-branch: the serve client branches on the server's
        # response status, which the taint pass conflates with the key
        # bytes the request carried.
        assert rules <= {"ct.key-global", "ct.raw-ecb",
                         "ct.secret-branch"}
