"""Netlist DRC rules: each rule gets a triggering and a
non-triggering fixture; the shipped connectivity designs must be
clean on all of them."""

import dataclasses

import pytest

from repro.arch.spec import PAPER_SPECS
from repro.checks.engine import KIND_DESIGN, KIND_NETLIST, run_rules
from repro.checks.netgraph import CellKind, Design, NetgraphError
from repro.checks.netlist_drc import NetlistSubject
from repro.fpga.aes_netlists import build_netlist
from repro.fpga.connectivity import paper_connectivity
from repro.ip.control import Variant


def run_design_rule(rule_id, design):
    return run_rules({KIND_DESIGN: [design]}, only=[rule_id])


def run_netlist_rule(rule_id, subject):
    return run_rules({KIND_NETLIST: [subject]}, only=[rule_id])


def minimal_clean_design():
    """reg -> logic -> reg: every net driven once and read."""
    d = Design("minimal")
    d.add_cell("a_reg", CellKind.SEQ, q=("out", 8), d=("in", 8))
    d.add_cell("logic", CellKind.COMB, x=("in", 8), y=("out", 8))
    d.add_net("n1", 8)
    d.add_net("n2", 8)
    d.connect("n1", "a_reg", "q")
    d.connect("n1", "logic", "x")
    d.connect("n2", "logic", "y")
    d.connect("n2", "a_reg", "d")
    return d


class TestNetgraphConstruction:
    def test_duplicate_cell_rejected(self):
        d = Design("dup")
        d.add_cell("c", CellKind.COMB, x=("in", 1))
        with pytest.raises(NetgraphError, match="duplicate cell"):
            d.add_cell("c", CellKind.COMB, x=("in", 1))

    def test_duplicate_net_rejected(self):
        d = Design("dup")
        d.add_net("n", 1)
        with pytest.raises(NetgraphError, match="duplicate net"):
            d.add_net("n", 1)

    def test_connect_checks_endpoints(self):
        d = Design("x")
        d.add_net("n", 1)
        with pytest.raises(NetgraphError, match="unknown cell"):
            d.connect("n", "ghost", "p")
        d.add_cell("c", CellKind.COMB, p=("in", 1))
        with pytest.raises(NetgraphError, match="no port"):
            d.connect("n", "c", "ghost_port")


class TestUndrivenNet:
    def test_triggers(self):
        d = minimal_clean_design()
        d.add_net("floating", 8)
        d.connect("floating", "logic", "x")  # second sink, no driver
        findings = run_design_rule("drc.undriven-net", d)
        assert len(findings) == 1
        assert "floating" in findings[0].message

    def test_clean(self):
        assert not run_design_rule("drc.undriven-net",
                                   minimal_clean_design())


class TestMultiDrivenNet:
    def test_triggers(self):
        d = minimal_clean_design()
        d.add_cell("rogue", CellKind.COMB, y=("out", 8))
        d.connect("n1", "rogue", "y")  # n1 already driven by a_reg.q
        findings = run_design_rule("drc.multi-driven-net", d)
        assert len(findings) == 1
        assert "2 outputs" in findings[0].message

    def test_clean(self):
        assert not run_design_rule("drc.multi-driven-net",
                                   minimal_clean_design())


class TestDanglingNet:
    def test_triggers(self):
        d = minimal_clean_design()
        d.add_cell("src", CellKind.SEQ, q=("out", 4))
        d.add_net("unused", 4)
        d.connect("unused", "src", "q")
        findings = run_design_rule("drc.dangling-net", d)
        assert len(findings) == 1
        assert findings[0].severity.name == "WARNING"

    def test_clean(self):
        assert not run_design_rule("drc.dangling-net",
                                   minimal_clean_design())


class TestWidthMismatch:
    def test_triggers(self):
        d = minimal_clean_design()
        d.add_cell("narrow", CellKind.COMB, x=("in", 4))
        d.connect("n1", "narrow", "x")  # 4-bit port on an 8-bit net
        findings = run_design_rule("drc.width-mismatch", d)
        assert len(findings) == 1
        assert "4 bits" in findings[0].message

    def test_clean(self):
        assert not run_design_rule("drc.width-mismatch",
                                   minimal_clean_design())


class TestUnconnectedPort:
    def test_triggers(self):
        d = minimal_clean_design()
        d.add_cell("half", CellKind.COMB, x=("in", 8),
                   y=("out", 8))
        d.connect("n1", "half", "x")  # y never attached
        findings = run_design_rule("drc.unconnected-port", d)
        assert len(findings) == 1
        assert "half.y" in findings[0].message

    def test_clean(self):
        assert not run_design_rule("drc.unconnected-port",
                                   minimal_clean_design())


class TestCombLoop:
    def _looped(self, break_with_seq):
        d = Design("loop")
        middle = CellKind.SEQ if break_with_seq else CellKind.COMB
        d.add_cell("f", CellKind.COMB, x=("in", 1), y=("out", 1))
        d.add_cell("g", middle, x=("in", 1), y=("out", 1))
        d.add_net("a", 1)
        d.add_net("b", 1)
        d.connect("a", "f", "y")
        d.connect("a", "g", "x")
        d.connect("b", "g", "y")
        d.connect("b", "f", "x")
        return d

    def test_comb_comb_loop_triggers(self):
        findings = run_design_rule("drc.comb-loop",
                                   self._looped(False))
        assert len(findings) == 1
        assert "combinational loop" in findings[0].message

    def test_register_breaks_loop(self):
        assert not run_design_rule("drc.comb-loop",
                                   self._looped(True))

    def test_async_rom_participates(self):
        # A ROM is combinational (async EAB): rom -> comb -> rom loops.
        d = Design("romloop")
        d.add_cell("rom", CellKind.ROM, addr=("in", 8),
                   data=("out", 8))
        d.add_cell("fb", CellKind.COMB, x=("in", 8), y=("out", 8))
        d.add_net("a", 8)
        d.add_net("b", 8)
        d.connect("a", "rom", "data")
        d.connect("a", "fb", "x")
        d.connect("b", "fb", "y")
        d.connect("b", "rom", "addr")
        assert run_design_rule("drc.comb-loop", d)


def _bank(design, group, rom_count, addr_width=8):
    for i in range(rom_count):
        design.add_cell(f"{group}_rom{i}", CellKind.ROM, group=group,
                        addr=("in", addr_width), data=("out", 8))


class TestSboxBankShape:
    def test_wrong_rom_count_triggers(self):
        d = Design("bank")
        _bank(d, "bytesub", 3)
        findings = run_design_rule("drc.sbox-bank-shape", d)
        assert len(findings) == 1
        assert "3 ROMs" in findings[0].message

    def test_wrong_rom_shape_triggers(self):
        d = Design("bank")
        _bank(d, "bytesub", 4, addr_width=10)
        findings = run_design_rule("drc.sbox-bank-shape", d)
        assert len(findings) == 4  # every ROM misshapen

    def test_clean(self):
        d = Design("bank")
        _bank(d, "bytesub", 4)
        assert not run_design_rule("drc.sbox-bank-shape", d)


class TestPinBudget:
    def test_no_pins_means_not_applicable(self):
        assert not run_design_rule("drc.pin-budget",
                                   minimal_clean_design())

    def test_wrong_total_triggers(self):
        d = Design("pins")
        d.add_cell("pin_clk", CellKind.PIN_IN, pad=("in", 1))
        findings = run_design_rule("drc.pin-budget", d)
        assert findings
        assert any("Table 1" in f.message for f in findings)


class TestInputPinDriven:
    def test_triggers(self):
        d = Design("bad")
        d.add_cell("pin_out", CellKind.PIN_OUT, pad=("out", 8))
        findings = run_design_rule("drc.input-pin-driven", d)
        assert len(findings) == 1

    def test_clean(self):
        d = Design("ok")
        d.add_cell("pin_out", CellKind.PIN_OUT, pad=("in", 8))
        assert not run_design_rule("drc.input-pin-driven", d)


class TestShippedDesignsClean:
    """The paper devices must pass the whole DRC family."""

    @pytest.mark.parametrize("variant", list(Variant))
    def test_paper_connectivity_clean(self, variant):
        design = paper_connectivity(variant)
        findings = run_rules({KIND_DESIGN: [design]},
                             only=[r for r in _drc_rule_ids()])
        assert findings == []

    def test_paper_sbox_banks_are_paper_shaped(self):
        design = paper_connectivity(Variant.ENCRYPT)
        roms = list(design.cells_of_kind(CellKind.ROM))
        assert len(roms) == 8  # 4 ByteSub + 4 KStran


def _drc_rule_ids():
    from repro.checks.engine import registry

    return [r for r in registry() if r.startswith("drc.")]


class TestStructuralInventory:
    def _subject(self, name="encrypt"):
        spec = PAPER_SPECS[name]
        return NetlistSubject(spec, build_netlist(spec))

    def test_shipped_netlists_clean(self):
        for name in PAPER_SPECS:
            subject = self._subject(name)
            findings = run_rules(
                {KIND_NETLIST: [subject]},
                only=["struct.sbox-inventory",
                      "struct.paper-invariants"],
            )
            assert findings == [], name

    def test_sbox_inventory_catches_spec_drift(self):
        subject = self._subject()
        drifted = dataclasses.replace(subject.spec,
                                      unrolled_rounds=2)
        findings = run_netlist_rule(
            "struct.sbox-inventory",
            NetlistSubject(drifted, subject.netlist),
        )
        assert findings
        assert "data S-boxes" in findings[0].message

    def test_paper_invariants_catch_pin_drift(self):
        subject = self._subject()
        netlist = build_netlist(subject.spec)
        netlist.add_pins("debug_port", 3)
        findings = run_netlist_rule(
            "struct.paper-invariants",
            NetlistSubject(subject.spec, netlist),
        )
        assert findings
        assert "pins" in findings[0].message
