"""FlowProgram engine: call-graph resolution, interprocedural taint,
sanitizers/declassifiers and the blocking-call closure."""

import textwrap

from repro.checks.crypto_lint import SourceFile
from repro.checks.engine import CheckConfig
from repro.checks.flow import FlowProgram, FlowSubject


def program(config=None, /, **modules):
    sources = tuple(
        SourceFile.parse(f"{name}.py", textwrap.dedent(code))
        for name, code in modules.items()
    )
    return FlowProgram(sources, config or CheckConfig())


def fn(prog, qualname):
    return prog.functions[qualname]


class TestCallGraph:
    def test_same_module_bare_call_resolves(self):
        prog = program(mod="""
            def helper(x):
                return x

            def caller():
                helper(1)
            """)
        edges = prog.edges(fn(prog, "mod.py::caller"))
        assert [e.callee.qualname for e in edges] == \
            ["mod.py::helper"]

    def test_cross_module_unique_name_resolves(self):
        prog = program(
            a="""
            def unique_helper(x):
                return x
            """,
            b="""
            def caller():
                unique_helper(1)
            """)
        edges = prog.edges(fn(prog, "b.py::caller"))
        assert [e.callee.qualname for e in edges] == \
            ["a.py::unique_helper"]

    def test_ambiguous_name_resolves_to_nothing(self):
        prog = program(
            a="def helper():\n    pass\n",
            b="def helper():\n    pass\n",
            c="def caller():\n    helper()\n")
        assert prog.edges(fn(prog, "c.py::caller")) == []

    def test_self_call_prefers_own_class(self):
        prog = program(mod="""
            class A:
                def step(self):
                    pass

                def run(self):
                    self.step()

            class B:
                def step(self):
                    pass
            """)
        edges = prog.edges(fn(prog, "mod.py::A.run"))
        assert [e.callee.qualname for e in edges] == \
            ["mod.py::A.step"]
        assert edges[0].offset == 1

    def test_self_call_never_resolves_to_foreign_class(self):
        prog = program(mod="""
            class A:
                def run(self):
                    self.step()

            class B:
                def step(self):
                    pass
            """)
        assert prog.edges(fn(prog, "mod.py::A.run")) == []

    def test_foreign_receiver_never_resolves_to_method(self):
        # The production false positive: writer.close() must not
        # resolve to some unrelated class's async close().
        prog = program(mod="""
            class Client:
                async def close(self):
                    pass

            def shutdown(writer):
                writer.close()
            """)
        assert prog.edges(fn(prog, "mod.py::shutdown")) == []

    def test_attribute_call_resolves_to_plain_function(self):
        prog = program(
            modes="""
            def ecb_helper(data):
                return data
            """,
            caller="""
            import modes

            def run(data):
                return modes.ecb_helper(data)
            """)
        edges = prog.edges(fn(prog, "caller.py::run"))
        assert [e.callee.qualname for e in edges] == \
            ["modes.py::ecb_helper"]


class TestTaint:
    def test_secret_named_param_is_seeded(self):
        prog = program(mod="""
            def f(key):
                pass
            """)
        assert "key" in prog.taint(fn(prog, "mod.py::f"))

    def test_carrier_annotation_is_seeded(self):
        prog = program(mod="""
            def f(sess: Session):
                pass

            def g(sess: "Optional[Session]"):
                pass
            """)
        assert "sess" in prog.taint(fn(prog, "mod.py::f"))
        assert "sess" in prog.taint(fn(prog, "mod.py::g"))

    def test_carrier_constructor_taints_local(self):
        prog = program(mod="""
            def f(material):
                sess = Session(material)
                return None
            """)
        assert "sess" in prog.taint(fn(prog, "mod.py::f"))

    def test_assignment_propagates(self):
        prog = program(mod="""
            def f(key):
                alias = key
                derived = alias + b"x"
            """)
        taint = prog.taint(fn(prog, "mod.py::f"))
        assert {"alias", "derived"} <= taint

    def test_call_site_seeds_callee_param(self):
        prog = program(mod="""
            def sink(material):
                pass

            def f(key):
                sink(key)
            """)
        assert "material" in prog.taint(fn(prog, "mod.py::sink"))

    def test_keyword_call_site_seeds(self):
        prog = program(mod="""
            def sink(material=None):
                pass

            def f(key):
                sink(material=key)
            """)
        assert "material" in prog.taint(fn(prog, "mod.py::sink"))

    def test_two_hop_transitive_seeding(self):
        prog = program(mod="""
            def inner(deep):
                pass

            def middle(mid):
                inner(mid)

            def f(key):
                middle(key)
            """)
        assert "deep" in prog.taint(fn(prog, "mod.py::inner"))

    def test_returns_secret_flows_back_to_caller(self):
        prog = program(mod="""
            def expand(key):
                return key * 2

            def f(key):
                schedule = expand(key)
            """)
        assert "mod.py::expand" in prog.returns_secret
        assert "schedule" in prog.taint(fn(prog, "mod.py::f"))

    def test_depth_bound_stops_propagation(self):
        chain = ["def f0(key):\n    f1(key)\n"]
        for i in range(1, 6):
            chain.append(
                f"def f{i}(arg{i}):\n    f{i + 1}(arg{i})\n")
        chain.append("def f6(arg6):\n    pass\n")
        code = "\n".join(chain)
        shallow = FlowProgram(
            (SourceFile.parse("mod.py", code),),
            CheckConfig(flow_max_depth=2))
        deep = FlowProgram(
            (SourceFile.parse("mod.py", code),),
            CheckConfig(flow_max_depth=16))
        assert "arg6" in deep.taint(fn(deep, "mod.py::f6"))
        assert "arg6" not in shallow.taint(fn(shallow, "mod.py::f6"))

    def test_sanitizer_calls_launder(self):
        prog = program(mod="""
            def f(key):
                size = len(key)
                kind = isinstance(key, bytes)
            """)
        taint = prog.taint(fn(prog, "mod.py::f"))
        assert "size" not in taint and "kind" not in taint

    def test_public_attribute_projection_launders(self):
        prog = program(mod="""
            def f(session: Session):
                ident = session.session_id
                bits = session.material
            """)
        taint = prog.taint(fn(prog, "mod.py::f"))
        assert "ident" not in taint
        assert "bits" in taint

    def test_is_none_check_launders(self):
        prog = program(mod="""
            def f(key):
                present = key is not None
            """)
        assert "present" not in prog.taint(fn(prog, "mod.py::f"))

    def test_declassified_entry_point_never_returns_secret(self):
        prog = program(mod="""
            def ecb_encrypt(key, data):
                return bytes(b ^ key[0] for b in data)

            def f(key, data):
                ct = ecb_encrypt(key, data)
            """)
        assert "mod.py::ecb_encrypt" not in prog.returns_secret
        assert "ct" not in prog.taint(fn(prog, "mod.py::f"))

    def test_lambda_capture_does_not_read_taint(self):
        # A timing closure must not taint the measurement pipeline.
        prog = program(mod="""
            def f(key):
                thunk = lambda: transform(key)
            """)
        assert "thunk" not in prog.taint(fn(prog, "mod.py::f"))


class TestBlocking:
    def test_direct_sleep_detected(self):
        prog = program(mod="""
            import ast, time

            def f():
                time.sleep(1)
            """)
        info = fn(prog, "mod.py::f")
        assert prog.blocking_chain(info) == ("time.sleep",)

    def test_socket_prefix_detected(self):
        prog = program(mod="""
            import socket

            def f(host):
                socket.create_connection((host, 80))
            """)
        assert prog.blocking_chain(fn(prog, "mod.py::f")) is not None

    def test_sync_crypto_entry_point_detected(self):
        prog = program(mod="""
            def f(engine, key, data):
                return engine.encrypt_blocks(key, data)
            """)
        assert prog.blocking_chain(fn(prog, "mod.py::f")) == \
            ("engine.encrypt_blocks",)

    def test_transitive_chain_is_spelled_out(self):
        prog = program(mod="""
            import time

            def leaf():
                time.sleep(1)

            def middle():
                leaf()
            """)
        assert prog.blocking_chain(fn(prog, "mod.py::middle")) == \
            ("leaf", "time.sleep")

    def test_async_functions_are_not_marked(self):
        prog = program(mod="""
            import time

            async def f():
                time.sleep(1)
            """)
        assert prog.blocking_chain(fn(prog, "mod.py::f")) is None


class TestSubjectCache:
    def test_program_is_cached_per_config(self):
        subject = FlowSubject(
            (SourceFile.parse("m.py", "def f():\n    pass\n"),))
        config = CheckConfig()
        assert subject.program(config) is subject.program(config)

    def test_new_config_rebuilds(self):
        subject = FlowSubject(
            (SourceFile.parse("m.py", "def f():\n    pass\n"),))
        first = subject.program(CheckConfig())
        second = subject.program(CheckConfig(flow_max_depth=2))
        assert first is not second
