"""Symbolic equivalence: algebra, stage proofs, and mutation traps."""

import pytest

from repro.aes.constants import INV_SBOX, RCON, SBOX
from repro.checks import equiv
from repro.checks.engine import KIND_EQUIV, run_rules
from repro.checks.equiv import (
    IDENTITY,
    ByteExpr,
    EquivSubject,
    check_key_step,
    check_mix_stage,
    check_sbox_tables,
    check_sub_stage,
    gf_mul,
    mat_apply,
    matrix_from_fn,
    paper_equiv_subjects,
    symbolic_key_step,
    symbolic_mix_stage,
    verify,
)
from repro.ip.control import Variant


@pytest.fixture(autouse=True)
def fresh_cache():
    equiv.clear_cache()
    yield
    equiv.clear_cache()


class TestByteAlgebra:
    def test_xor_cancels_duplicate_atoms(self):
        a = ByteExpr.var("x")
        assert (a ^ a) == ByteExpr.lit(0)

    def test_matrix_from_fn_roundtrip(self):
        double = matrix_from_fn(lambda b: gf_mul(b, 2))
        for value in (0x00, 0x01, 0x53, 0x80, 0xFF):
            assert mat_apply(double, value) == gf_mul(value, 2)

    def test_sbox_atom_evaluates_through_table(self):
        expr = ByteExpr.sbox("S", ByteExpr.var("x"))
        assert expr.evaluate({"x": 0x00}) == SBOX[0x00]
        assert expr.evaluate({"x": 0x53}) == SBOX[0x53]

    def test_compound_sbox_argument(self):
        arg = ByteExpr.var("x") ^ ByteExpr.var("y")
        expr = ByteExpr.sbox("IS", arg)
        assert expr.evaluate({"x": 0x12, "y": 0x34}) == \
            INV_SBOX[0x12 ^ 0x34]

    def test_linearity_flag(self):
        assert (ByteExpr.var("x") ^ ByteExpr.var("y")).is_linear
        assert not ByteExpr.lit(1).is_linear
        assert not ByteExpr.sbox("S", ByteExpr.var("x")).is_linear

    def test_mapped_composes_matrices(self):
        double = matrix_from_fn(lambda b: gf_mul(b, 2))
        expr = ByteExpr.var("x").mapped(double).mapped(double)
        assert expr.evaluate({"x": 0x37}) == gf_mul(0x37, 4)
        assert IDENTITY == matrix_from_fn(lambda b: b)


class TestStageProofs:
    def test_sbox_tables_proven(self):
        assert check_sbox_tables() == []

    @pytest.mark.parametrize("inverse", [False, True])
    def test_sub_stage_proven(self, inverse):
        assert check_sub_stage(inverse) == []

    @pytest.mark.parametrize("inverse", [False, True])
    def test_mix_stage_proven(self, inverse):
        assert check_mix_stage(inverse) == []

    @pytest.mark.parametrize("reverse", [False, True])
    def test_key_step_proven(self, reverse):
        assert check_key_step(reverse) == []

    def test_mix_stage_model_is_linear(self):
        for inverse in (False, True):
            for bypass in (False, True):
                model = symbolic_mix_stage(inverse, bypass)
                assert all(e.is_linear for e in model)

    def test_key_step_rcon_lands_on_msb_of_word0(self):
        model = symbolic_key_step(reverse=False)
        assert equiv.RCON_VAR in model[0].variables()
        for expr in model[1:4]:
            assert equiv.RCON_VAR not in expr.variables()

    def test_rcon_first_eight_span_gf2_8(self):
        # The property the key-step probe strategy relies on.
        assert sorted(RCON[1:9]) == [1 << b for b in range(8)]


class TestSubjectsAndRules:
    def test_shipped_subjects_all_proven(self):
        subjects = paper_equiv_subjects()
        assert [s.variant for s in subjects] == list(Variant)
        for subject in subjects:
            report = verify(subject)
            assert all(not v for v in report.values()), report

    def test_rules_produce_no_findings_on_shipped_tree(self):
        findings = run_rules({KIND_EQUIV: paper_equiv_subjects()})
        assert findings == []

    def test_verification_is_memoized(self):
        subject = paper_equiv_subjects()[0]
        first = verify(subject)
        assert verify(subject) is first

    def test_every_datapath_cell_is_claimed(self):
        from repro.checks.netgraph import CellKind

        for subject in paper_equiv_subjects():
            for name, cell in subject.design.cells.items():
                if cell.kind in (CellKind.COMB, CellKind.ROM):
                    assert name in equiv.STAGE_COVERAGE, name

    def test_unclaimed_cell_warns(self):
        from repro.checks.netgraph import CellKind, Design

        design = Design("extra")
        design.add_cell("rogue_xor", CellKind.COMB,
                        i=("in", 8), o=("out", 8))
        subject = EquivSubject(Variant.ENCRYPT, design)
        findings = run_rules({KIND_EQUIV: [subject]},
                             only=["eqv.unmodelled-cell"])
        assert [f.location.obj for f in findings] == ["rogue_xor"]


class TestMutationTraps:
    """Seeded defects must be caught — the checker is not vacuous."""

    def test_corrupt_sbox_entry_is_detected(self, monkeypatch):
        broken = list(SBOX)
        broken[0x42] ^= 0x01
        monkeypatch.setitem(equiv.TABLES, "S", tuple(broken))
        problems = check_sub_stage(inverse=False)
        assert problems

    def test_wrong_mix_coefficients_are_detected(self, monkeypatch):
        monkeypatch.setattr(equiv, "MIX_POLY", (0x03, 0x02, 0x01, 0x01))
        problems = check_mix_stage(inverse=False)
        assert any("mix stage" in p for p in problems)

    def test_wrong_rcon_injection_is_detected(self, monkeypatch):
        # Pretend the netlist injects Rcon on the LSB byte instead.
        original = equiv.symbolic_key_step

        def skewed(reverse):
            model = original(reverse)
            rcon = ByteExpr.var(equiv.RCON_VAR)
            model[0] = model[0] ^ rcon          # remove from MSB
            model[3] = model[3] ^ rcon          # add on LSB
            return model

        monkeypatch.setattr(equiv, "symbolic_key_step", skewed)
        problems = equiv.check_key_step(reverse=False)
        assert any("key step" in p for p in problems)
