"""Graph STA: Table 2 reproduction, slack, divergence and DAG rules."""

import dataclasses

import pytest

from repro.analysis.tables import PAPER_TABLE2
from repro.checks.engine import KIND_STA, run_rules
from repro.checks.netgraph import CellKind, Design
from repro.checks.sta import (
    StaSubject,
    analyze_design,
    paper_sta_subjects,
)
from repro.fpga.devices import EP1C20, EP1K100
from repro.ip.control import NUM_ROUNDS, Variant

ALL_SUBJECTS = paper_sta_subjects()
ROW_IDS = [s.label for s in ALL_SUBJECTS]


@pytest.fixture(scope="module", params=ALL_SUBJECTS, ids=ROW_IDS)
def report(request):
    return analyze_design(request.param)


class TestTable2Reproduction:
    def test_rounded_period_matches_table2(self, report):
        sub = report.subject
        key = (sub.spec.variant.value, sub.device.family)
        expected_clk = PAPER_TABLE2[key][4]
        assert report.clock_ns == expected_clk

    def test_block_latency_is_50_clocks(self, report):
        sub = report.subject
        key = (sub.spec.variant.value, sub.device.family)
        expected_latency = PAPER_TABLE2[key][3]
        cycles = 5 * NUM_ROUNDS  # the paper's 50-clock block latency
        assert cycles * report.clock_ns == expected_latency

    def test_no_negative_slack_at_table2_period(self, report):
        assert report.slack_ns >= 0

    def test_graph_matches_analytical_model_exactly(self, report):
        assert report.critical_ns == pytest.approx(report.analytical_ns)

    def test_paper_designs_are_dags(self, report):
        assert report.cycles == []

    def test_every_cell_has_a_delay_model(self, report):
        assert report.unmodelled == []

    def test_critical_path_ends_in_a_register(self, report):
        critical = report.critical
        assert critical is not None
        end = report.subject.design.cells[critical.end]
        assert end.kind in (CellKind.SEQ, CellKind.ROM)


class TestRuleFindings:
    def test_shipped_subjects_produce_no_findings(self):
        findings = run_rules({KIND_STA: ALL_SUBJECTS})
        assert findings == []

    def test_routing_increment_creates_negative_slack(self):
        # A long-routing device stretches graph paths while the
        # analytical constraint stays put: slack goes negative and the
        # two models diverge.
        slow = dataclasses.replace(EP1K100, t_route=2.0)
        base = ALL_SUBJECTS[0]
        subject = StaSubject(base.spec, slow, base.design)
        rep = analyze_design(subject)
        assert rep.slack_ns < 0
        findings = run_rules({KIND_STA: [subject]})
        rules = {f.rule for f in findings}
        assert "sta.negative-slack" in rules
        assert "sta.model-divergence" in rules

    def test_combinational_cycle_reports_non_dag(self):
        design = Design("looped")
        design.add_cell("a", CellKind.COMB,
                        i=("in", 1), o=("out", 1))
        design.add_cell("b", CellKind.COMB,
                        i=("in", 1), o=("out", 1))
        design.add_net("ab", 1)
        design.add_net("ba", 1)
        design.connect("ab", "a", "o")
        design.connect("ab", "b", "i")
        design.connect("ba", "b", "o")
        design.connect("ba", "a", "i")
        subject = StaSubject(ALL_SUBJECTS[0].spec, EP1K100, design)
        rep = analyze_design(subject)
        assert rep.cycles
        findings = run_rules({KIND_STA: [subject]},
                             only=["sta.non-dag"])
        assert len(findings) == 1
        assert "cycle" in findings[0].message

    def test_unknown_cell_warns_and_still_analyzes(self):
        design = Design("mystery")
        design.add_cell("src", CellKind.SEQ,
                        q=("out", 8))
        design.add_cell("gadget", CellKind.COMB,
                        i=("in", 8), o=("out", 8))
        design.add_cell("dst", CellKind.SEQ,
                        d=("in", 8))
        design.add_net("n1", 8)
        design.add_net("n2", 8)
        design.connect("n1", "src", "q")
        design.connect("n1", "gadget", "i")
        design.connect("n2", "gadget", "o")
        design.connect("n2", "dst", "d")
        subject = StaSubject(ALL_SUBJECTS[0].spec, EP1C20, design)
        rep = analyze_design(subject)
        assert rep.unmodelled == ["gadget"]
        # The guessed delay is one logic level.
        assert rep.critical_ns == pytest.approx(
            EP1C20.t_overhead + EP1C20.t_level)
        findings = run_rules({KIND_STA: [subject]},
                             only=["sta.unmodelled-cell"])
        assert [f.location.obj for f in findings] == ["gadget"]


class TestReportRendering:
    def test_render_names_the_full_cell_chain(self):
        both = next(s for s in ALL_SUBJECTS
                    if s.spec.variant is Variant.BOTH
                    and s.device is EP1K100)
        text = analyze_design(both).render()
        assert "mix_network" in text
        assert "required 17 ns" in text
        assert "divergence 0.00 ns" in text
