"""Constant-time / crypto-misuse AST rules: one triggering and one
non-triggering snippet per rule, plus taint-engine behaviour."""

import textwrap

from repro.checks.crypto_lint import SourceFile
from repro.checks.engine import KIND_SOURCE, CheckConfig, run_rules


def lint(code, rule_id, config=None):
    source = SourceFile.parse("snippet.py", textwrap.dedent(code))
    return run_rules({KIND_SOURCE: [source]}, config,
                     only=[rule_id])


class TestSecretBranch:
    def test_branch_on_key_byte_triggers(self):
        findings = lint(
            """
            def f(key):
                if key[0] == 0x52:
                    return 1
                return 0
            """, "ct.secret-branch")
        assert len(findings) == 1
        assert "key" in findings[0].message

    def test_branch_on_key_length_is_fine(self):
        findings = lint(
            """
            def f(key):
                if len(key) != 16:
                    raise ValueError("bad key size")
            """, "ct.secret-branch")
        assert findings == []

    def test_compare_digest_launders(self):
        findings = lint(
            """
            import hmac
            def f(key, tag):
                if hmac.compare_digest(key, tag):
                    return True
            """, "ct.secret-branch")
        assert findings == []

    def test_taint_propagates_through_assignment(self):
        findings = lint(
            """
            def f(key):
                word = key[0] ^ 0x63
                while word:
                    word >>= 1
            """, "ct.secret-branch")
        assert len(findings) == 1

    def test_public_branch_untainted(self):
        findings = lint(
            """
            def f(key, rounds):
                for i in range(rounds):
                    if i == 9:
                        break
            """, "ct.secret-branch")
        assert findings == []


class TestSecretIndex:
    def test_lookup_by_key_byte_triggers(self):
        findings = lint(
            """
            def f(key, table):
                return table[key[0]]
            """, "ct.secret-index")
        assert len(findings) == 1
        assert "table" in findings[0].message

    def test_sanctioned_sbox_is_fine(self):
        findings = lint(
            """
            def f(key):
                return SBOX[key[0]]
            """, "ct.secret-index")
        assert findings == []

    def test_slicing_the_secret_by_public_index_is_fine(self):
        findings = lint(
            """
            def f(key, i):
                return key[4 * i:4 * i + 4]
            """, "ct.secret-index")
        assert findings == []

    def test_custom_sanctioned_tables(self):
        config = CheckConfig(sanctioned_tables=("MY_ROM",))
        code = """
            def f(key):
                return MY_ROM[key[0]]
            """
        assert lint(code, "ct.secret-index", config) == []
        assert lint(code, "ct.secret-index")  # default set: flagged

    def test_name_exceptions_are_not_secrets(self):
        findings = lint(
            """
            def f(table, key_index, is_key):
                if is_key:
                    return table[key_index]
            """, "ct.secret-branch")
        assert findings == []


class TestKeyGlobal:
    def test_module_key_literal_triggers(self):
        findings = lint(
            'SESSION_KEY = bytes.fromhex("2b7e151628aed2a6")\n',
            "ct.key-global")
        assert len(findings) == 1
        assert "SESSION_KEY" in findings[0].message

    def test_annotated_assignment_triggers(self):
        findings = lint(
            'STATIC_IV: bytes = b"\\x00" * 16\n', "ct.key-global")
        assert len(findings) == 1

    def test_non_key_constant_is_fine(self):
        assert lint("BLOCK = 16\n", "ct.key-global") == []

    def test_non_bytes_key_name_is_fine(self):
        # A key *schedule length*, not key material.
        assert lint("KEY_WORDS = 44\n", "ct.key-global") == []


class TestPaddingOracle:
    def test_bytewise_comparison_triggers(self):
        findings = lint(
            """
            def pkcs7_unpad(data, block=16):
                pad = data[-1]
                if data[-pad:] != bytes([pad]) * pad:
                    raise ValueError("invalid padding")
                return data[:-pad]
            """, "ct.padding-oracle")
        assert len(findings) >= 1
        assert any("compare_digest" in f.message for f in findings)

    def test_early_exit_branch_triggers(self):
        findings = lint(
            """
            def unpad(data):
                pad = data[-1]
                for byte in data[-pad:]:
                    if byte != pad:
                        raise ValueError("bad")
                return data[:-pad]
            """, "ct.padding-oracle")
        assert len(findings) >= 1

    def test_truthiness_branch_triggers(self):
        findings = lint(
            """
            def unpad(data):
                while data:
                    data = data[:-1]
                return data
            """, "ct.padding-oracle")
        assert len(findings) == 1
        assert "branch" in findings[0].message

    def test_accumulator_style_is_fine(self):
        findings = lint(
            """
            import hmac

            def _ct_lt(a, b):
                return ((a - b) >> 9) & 1

            def pkcs7_unpad(data, block=16):
                data = bytes(data)
                if len(data) == 0 or len(data) % block:
                    raise ValueError("bad length")
                tail = data[len(data) - block:]
                pad = tail[block - 1]
                bad = _ct_lt(pad, 1) | _ct_lt(block, pad)
                for offset in range(block):
                    byte = tail[block - 1 - offset]
                    bad |= _ct_lt(offset, pad) * (byte ^ pad)
                if not hmac.compare_digest(bytes([bad]), b"\\x00"):
                    raise ValueError("invalid padding")
                return data[: len(data) - pad]
            """, "ct.padding-oracle")
        assert findings == []

    def test_geometry_params_not_seeded(self):
        findings = lint(
            """
            def unpad(data, block=16):
                if block > 255:
                    raise ValueError("bad block")
            """, "ct.padding-oracle")
        assert findings == []

    def test_non_padding_function_not_scanned(self):
        findings = lint(
            """
            def parse(data):
                if data[-1] == 0:
                    return data[:-1]
                return data
            """, "ct.padding-oracle")
        assert findings == []

    def test_shipped_unpad_is_clean(self):
        from pathlib import Path

        import repro.aes.modes as modes

        source = SourceFile.parse(
            "modes.py", Path(modes.__file__).read_text())
        findings = run_rules({KIND_SOURCE: [source]}, None,
                             only=["ct.padding-oracle"])
        assert findings == []


class TestStaticIv:
    def test_keyword_literal_iv_triggers(self):
        findings = lint(
            """
            def send(key, msg):
                return cbc_encrypt(key, msg, iv=b"\\x00" * 16)
            """, "ct.static-iv")
        assert len(findings) == 1

    def test_positional_literal_iv_triggers(self):
        findings = lint(
            """
            def send(key, msg):
                return cbc_encrypt(key, b"\\x00" * 16, msg)
            """, "ct.static-iv")
        assert len(findings) == 1

    def test_fresh_iv_is_fine(self):
        findings = lint(
            """
            import os
            def send(key, msg):
                return cbc_encrypt(key, os.urandom(16), msg)
            """, "ct.static-iv")
        assert findings == []


class TestRawEcb:
    def test_ecb_call_outside_library_triggers(self):
        findings = lint(
            """
            def send(key, msg):
                return ecb_encrypt(key, msg)
            """, "ct.raw-ecb")
        assert len(findings) == 1
        assert "ECB" in findings[0].message

    def test_mode_library_itself_is_exempt(self):
        findings = lint(
            """
            def ecb_encrypt(key, msg):
                return msg

            def helper(key, msg):
                return ecb_encrypt(key, msg)
            """, "ct.raw-ecb")
        assert findings == []


class TestTaintEngineEdges:
    def test_subscript_store_taints_container_not_index(self):
        # r[i] = key[...] must taint r, never the loop index i.
        findings = lint(
            """
            def f(key, table):
                r = [None] * 4
                for i in range(4):
                    r[i] = key[4 * i]
                    if i == 3:
                        pass
                    x = table[i]
                return r, x
            """, "ct.secret-branch")
        assert findings == []

    def test_attribute_store_does_not_taint_object(self):
        findings = lint(
            """
            def f(self, key):
                self.key = key
                if self:
                    return 1
            """, "ct.secret-branch")
        assert findings == []

    def test_tainted_container_lookup_by_secret_triggers(self):
        findings = lint(
            """
            def f(key, table):
                k = key
                return table[k[0]]
            """, "ct.secret-index")
        assert len(findings) == 1


class TestCallSitePropagation:
    """One level of same-module helper-call taint propagation."""

    def test_helper_branch_on_tainted_arg_triggers(self):
        findings = lint(
            """
            def _mask(value):
                if value & 1:
                    return 0xFF
                return 0

            def f(key):
                return _mask(key[0])
            """, "ct.secret-branch")
        assert len(findings) == 1
        assert findings[0].location.obj == "_mask"

    def test_keyword_argument_seeds_callee(self):
        findings = lint(
            """
            def _mask(value=0):
                if value:
                    return 1
                return 0

            def f(key):
                return _mask(value=key[0])
            """, "ct.secret-branch")
        assert len(findings) == 1

    def test_helper_lookup_on_tainted_arg_triggers(self):
        findings = lint(
            """
            MY_TABLE = list(range(256))

            def _lookup(index):
                return MY_TABLE[index]

            def f(key):
                return _lookup(key[0])
            """, "ct.secret-index")
        assert len(findings) == 1

    def test_propagation_is_one_level_only(self):
        # key -> _outer is one hop (seeded); _outer -> _inner would be
        # a second hop driven by seeded (not lexical) taint, so the
        # branch inside _inner stays unflagged by design.
        findings = lint(
            """
            def _inner(value):
                if value & 1:
                    return 1
                return 0

            def _outer(value):
                return _inner(value)

            def f(key):
                return _outer(key[0])
            """, "ct.secret-branch")
        assert findings == []

    def test_sanitized_argument_does_not_seed(self):
        findings = lint(
            """
            def _pick(n):
                if n != 16:
                    raise ValueError(n)

            def f(key):
                _pick(len(key))
            """, "ct.secret-branch")
        assert findings == []

    def test_untainted_call_site_does_not_seed(self):
        findings = lint(
            """
            def _mask(value):
                if value & 1:
                    return 1
                return 0

            def f(key, rounds):
                return _mask(rounds)
            """, "ct.secret-branch")
        assert findings == []


class TestShippedSourcesClean:
    def test_cipher_and_ip_have_no_ct_errors(self):
        """The real tree must carry zero constant-time *errors*
        (the sanctioned warnings live in the baseline)."""
        from repro.checks.engine import Severity
        from repro.checks.runner import find_repo_root, run_lint

        result = run_lint(root=find_repo_root())
        errors = [f for f in result.findings
                  if f.severity is Severity.ERROR]
        assert errors == []
