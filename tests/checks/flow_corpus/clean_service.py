"""Negative control: a service slice doing everything right — pinned
tasks, executor-routed crypto, locked shared state, and logs that
render only lengths, public frame fields and ciphertext.  Every flow
rule must stay silent on this file."""

import asyncio
import logging

_LOG = logging.getLogger(__name__)


def gcm_encrypt(key, data):
    return data


class Session:
    def __init__(self, session_id):
        self.session_id = session_id
        self.key = None


class Service:
    async def start(self):
        self._stop_task = asyncio.create_task(self.stop())
        await self._stop_task

    async def stop(self):
        async with self._lock:
            self.jobs.clear()

    async def handle(self, loop, session: Session, key, frame, data):
        _LOG.info("op=%s sid=%s key_bytes=%d", frame.op,
                  session.session_id, len(key))
        ciphertext = await loop.run_in_executor(
            None, gcm_encrypt, key, data)
        async with self._lock:
            self.jobs.append(frame.request_id)
        await loop.run_in_executor(None, self._note_done)
        return f"ct={ciphertext.hex()}"

    def _note_done(self):
        with self._lock:
            self.jobs.pop()
