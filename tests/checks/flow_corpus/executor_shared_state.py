"""Read-modify-write on self.* state from both sides of the
loop/executor boundary with no lock: the GIL keeps bytecodes atomic,
not sequences."""


class Engine:
    async def submit(self, loop, job):
        self.pending.append(job)  # expect: aio.unlocked-shared-mutation
        await loop.run_in_executor(None, self._drain)

    def _drain(self):
        while self.pending:
            self.pending.pop()  # expect: aio.unlocked-shared-mutation
