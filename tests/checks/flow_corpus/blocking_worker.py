"""A coroutine that reaches a blocking crypto entry point through a
sync helper: only the transitive closure sees it."""

import time


def _grind(engine, data):
    return engine.encrypt_blocks(b"\x00" * 16, data)


def _relay(engine, data):
    return _grind(engine, data)


async def handle(engine, data):
    time.sleep(0.01)  # expect: aio.blocking-in-coroutine
    return _relay(engine, data)  # expect: aio.blocking-in-coroutine
