"""Key material escaping through observability channels: metrics
labels are exported on every scrape, span attributes end up in
shareable trace files, and a bare-statement coroutine call silently
does nothing."""


def trace_span(name, **attrs):
    pass


def count_request(counter, session_key):
    counter.labels(peer=session_key).inc()  # expect: taint.secret-in-metric


def trace_request(session_key, frame):
    with trace_span("enc", mat=session_key):  # expect: taint.secret-in-span
        pass


class Flusher:
    async def run(self):
        self.flush()  # expect: aio.unawaited-coroutine

    async def flush(self):
        pass
