"""Seed bug #1 (PR 5): a remotely-triggered stop() task spawned with
create_task and never bound — the loop holds only a weak reference,
so the GC can collect the shutdown mid-flight."""

import asyncio


class Server:
    async def _worker(self, frame):
        if frame.op == "SHUTDOWN":
            asyncio.create_task(self.stop())  # expect: aio.task-not-retained

    async def stop(self):
        pass
