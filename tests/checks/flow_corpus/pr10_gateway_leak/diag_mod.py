"""PR-10 re-injection, diagnostics half: an innocently named
parameter that only interprocedural propagation proves is a routed
Session (and therefore key material)."""

import logging

_LOG = logging.getLogger(__name__)


def report_unroutable(entry):
    _LOG.warning("no backend for %r", entry)  # expect: taint.secret-in-log
