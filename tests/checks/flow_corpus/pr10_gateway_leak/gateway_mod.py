"""PR-10 re-injection, gateway half: the cluster gateway routes a
keyed Session to a shard, and the no-backend failure path hands the
whole Session to a cross-file diagnostics helper.  The routing
metadata (``session_id``, the shard name) is public; the Session
object carrying the key is not — only the call graph proves the
helper's parameter is one."""

from diag_mod import report_unroutable


class Session:
    def __init__(self, session_id):
        self.session_id = session_id
        self.key = None


def route(ring, session: Session):
    shard = ring.lookup(session.session_id)
    if shard is None:
        report_unroutable(session)
    return shard
