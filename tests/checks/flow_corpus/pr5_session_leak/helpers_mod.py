"""Seed bug #2 (post-PR-5 review): the helper half — an innocently
named parameter that only the call graph proves is a Session."""

import logging

_LOG = logging.getLogger(__name__)


def log_state(state):
    _LOG.info("connection state: %r", state)  # expect: taint.secret-in-log
