"""Seed bug #2, server half: a Session (whose field *is* the session
key) handed across a file boundary to a helper that logs it.  The
shallow per-file lint sees nothing wrong in either file."""

from helpers_mod import log_state


class Session:
    def __init__(self, session_id):
        self.session_id = session_id
        self.key = None


def on_error(session: Session) -> None:
    log_state(session)
