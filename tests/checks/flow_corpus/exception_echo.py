"""A validator that echoes its argument: harmless in isolation, a
key-material leak once a call site feeds it schedule words (the
key_schedule._check_word defect fixed alongside this corpus)."""


def check_word(word):
    if word > 0xFFFFFFFF:
        msg = f"word out of range: {word!r}"  # expect: taint.secret-in-format
        raise ValueError(msg)  # expect: taint.secret-in-exception


def expand(key):
    for word in key:
        check_word(word)
