"""Seed-bug regression corpus for the flow packs.

Two layers:

- every fixture under ``flow_corpus/`` carries ``# expect: rule-id``
  annotations and is checked for an *exact* match — a missing finding
  is a regression, an unexpected one is a false positive;
- the historical PR-5 production bugs are re-injected into the real
  shipped ``repro.serve`` sources (mutation style) and the packs must
  flag each injection — and stay silent on the unmutated tree.
"""

import re
from pathlib import Path

import pytest

from repro.checks.crypto_lint import SourceFile
from repro.checks.engine import KIND_FLOW, CheckConfig, run_rules
from repro.checks.flow import FlowSubject
from repro.checks.runner import (
    DEFAULT_SOURCE_DIRS,
    FLOW_EXTRA_SOURCE_DIRS,
    find_repo_root,
)

CORPUS = Path(__file__).parent / "flow_corpus"
_EXPECT = re.compile(r"#\s*expect:\s*(?P<rules>[\w.,\s-]+)$")

FLOW_CONFIG = CheckConfig(enable=("taint.*", "aio.*"))


def _programs():
    """(program-id, [paths]) — files solo, subdirectories together."""
    for path in sorted(CORPUS.glob("*.py")):
        yield path.stem, [path]
    for sub in sorted(p for p in CORPUS.iterdir() if p.is_dir()):
        yield sub.name, sorted(sub.glob("*.py"))


def _expectations(paths):
    expected = set()
    for path in paths:
        for lineno, line in enumerate(
                path.read_text().splitlines(), start=1):
            match = _EXPECT.search(line)
            if match:
                for rule_id in match.group("rules").split(","):
                    expected.add((path.name, lineno,
                                  rule_id.strip()))
    return expected


def _run(sources):
    subject = FlowSubject(tuple(sources))
    return run_rules({KIND_FLOW: [subject]}, FLOW_CONFIG)


@pytest.mark.parametrize(
    "program_id,paths",
    list(_programs()),
    ids=[program_id for program_id, _ in _programs()],
)
def test_corpus_program(program_id, paths):
    sources = [SourceFile.parse(p.name, p.read_text())
               for p in paths]
    got = {(f.location.file, f.location.line, f.rule)
           for f in _run(sources)}
    expected = _expectations(paths)
    missing = expected - got
    unexpected = got - expected
    assert not missing, f"corpus findings not produced: {missing}"
    assert not unexpected, \
        f"false positives on corpus: {unexpected}"


# --------------------------------------------------------------------
# Mutation layer: the real serve tree, with each historical bug put
# back in.
# --------------------------------------------------------------------
def _serve_sources(mutate=None):
    root = find_repo_root(Path(__file__))
    sources = []
    for rel in (*DEFAULT_SOURCE_DIRS, *FLOW_EXTRA_SOURCE_DIRS):
        for path in sorted((root / rel).rglob("*.py")):
            display = str(path.relative_to(root))
            text = path.read_text()
            if mutate is not None:
                text = mutate(display, text)
            sources.append(SourceFile.parse(display, text))
    return sources


def _findings(rule_id, mutate=None):
    return [f for f in _run(_serve_sources(mutate))
            if f.rule == rule_id]


class TestHistoricalBugInjection:
    PIN = ("self._stop_task = (\n"
           "                        asyncio.get_running_loop()\n"
           "                        .create_task(self.stop())\n"
           "                    )")
    UNPINNED = ("(\n"
                "                        asyncio.get_running_loop()\n"
                "                        .create_task(self.stop())\n"
                "                    )")

    def test_shipped_tree_is_clean(self):
        findings = _run(_serve_sources())
        assert findings == [], \
            [f.render() for f in findings]

    def test_unretained_stop_task_reinjected_is_flagged(self):
        # PR-5 production bug #1: drop the pin, keep everything else.
        def mutate(path, text):
            if path.endswith("serve/server.py"):
                assert self.PIN in text, \
                    "server.py stop-task pin moved; update corpus"
                return text.replace(self.PIN, self.UNPINNED)
            return text

        flagged = _findings("aio.task-not-retained", mutate)
        assert len(flagged) == 1
        assert flagged[0].location.file.endswith("serve/server.py")
        assert "discarded" in flagged[0].message

    def test_session_logged_via_helper_reinjected_is_flagged(self):
        # PR-5 bug class #2: a Session crossing one helper call into
        # a log line.  The helper's parameter is innocently named —
        # only call-site seeding can prove it secret.
        injected = (
            "\n\n"
            "def _log_state(state):\n"
            "    _LOG.info('connection state: %r', state)\n"
            "\n\n"
            "def _on_protocol_error(session: Session) -> None:\n"
            "    _log_state(session)\n"
        )

        def mutate(path, text):
            if path.endswith("serve/server.py"):
                return text + injected
            return text

        flagged = _findings("taint.secret-in-log", mutate)
        assert len(flagged) == 1
        assert flagged[0].location.file.endswith("serve/server.py")
        assert "state" in flagged[0].message

    def test_session_in_admin_response_reinjected_is_flagged(self):
        # The admin plane's design contract: no Session ever reaches
        # a response body.  Re-inject exactly that bug — a debug
        # endpoint rendering the session — and the taint pack must
        # fire (the carrier annotation is the only secret marker).
        injected = (
            "\n\n"
            "def _session_debug_body(session: Session) -> str:\n"
            "    return f'active session: {session!r}\\n'\n"
        )

        def mutate(path, text):
            if path.endswith("serve/admin.py"):
                return text + injected
            return text

        flagged = [f for f in _run(_serve_sources(mutate))
                   if f.rule.startswith("taint.secret-in-")]
        assert len(flagged) == 1
        assert flagged[0].rule == "taint.secret-in-format"
        assert flagged[0].location.file.endswith("serve/admin.py")
