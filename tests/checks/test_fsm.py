"""FSM analysis rules: the shipped control FSMs must be clean, and
each rule must fire on a seeded defect."""

import pytest

from repro.checks.engine import KIND_FSM, run_rules
from repro.checks.fsm import FsmModel, core_fsm, paper_fsms
from repro.ip.control import (
    NUM_ROUNDS,
    Variant,
    block_latency,
    cycles_per_round,
)


def run_fsm_rule(rule_id, model):
    return run_rules({KIND_FSM: [model]}, only=[rule_id])


ALL_FSM_RULES = ["fsm.unreachable-state", "fsm.dead-transition",
                 "fsm.trap-state", "fsm.round-cycles"]


class TestCoreFsmModel:
    @pytest.mark.parametrize("variant", list(Variant))
    @pytest.mark.parametrize("sync_rom", [False, True])
    def test_shipped_fsms_clean(self, variant, sync_rom):
        model = core_fsm(variant, sync_rom)
        findings = run_rules({KIND_FSM: [model]}, only=ALL_FSM_RULES)
        assert findings == []

    def test_round_loop_is_the_paper_five_cycles(self):
        model = core_fsm(Variant.ENCRYPT, sync_rom=False)
        laps = model.cycles_through("round")
        assert laps
        assert all(cost == 5 for _, cost in laps)

    def test_block_product_matches_latency(self):
        for sync_rom in (False, True):
            model = core_fsm(Variant.ENCRYPT, sync_rom)
            assert (model.expected_round_cycles * NUM_ROUNDS
                    == block_latency(sync_rom))

    def test_paper_fsms_covers_all_flavours(self):
        models = paper_fsms()
        assert len(models) == len(Variant) * 2
        assert len({m.name for m in models}) == len(models)

    def test_decrypt_has_key_setup_pass(self):
        model = core_fsm(Variant.DECRYPT)
        assert "key_setup" in model.state_names()
        assert "key_setup" not in \
            core_fsm(Variant.ENCRYPT).state_names()

    def test_validate_rejects_phantom_states(self):
        model = FsmModel(name="bad", reset="idle")
        model.add_state("idle")
        model.add_transition("idle", "ghost", "go")
        with pytest.raises(ValueError, match="undeclared"):
            model.validate()


class TestUnreachableState:
    def test_triggers(self):
        model = core_fsm(Variant.ENCRYPT)
        model.add_state("orphan")
        findings = run_fsm_rule("fsm.unreachable-state", model)
        assert len(findings) == 1
        assert "orphan" in findings[0].message

    def test_clean(self):
        assert not run_fsm_rule("fsm.unreachable-state",
                                core_fsm(Variant.ENCRYPT))


class TestDeadTransition:
    def test_unreachable_source_triggers(self):
        model = core_fsm(Variant.ENCRYPT)
        model.add_state("orphan")
        model.add_transition("orphan", "idle", "escape")
        findings = run_fsm_rule("fsm.dead-transition", model)
        assert len(findings) == 1
        assert "source state is unreachable" in findings[0].message

    def test_shadowed_duplicate_triggers(self):
        model = core_fsm(Variant.ENCRYPT)
        # Same (source, event) as the existing start transition.
        model.add_transition("idle", "run_s2", "start_block")
        findings = run_fsm_rule("fsm.dead-transition", model)
        assert len(findings) == 1
        assert "shadowed" in findings[0].message

    def test_clean(self):
        assert not run_fsm_rule("fsm.dead-transition",
                                core_fsm(Variant.BOTH, True))


class TestTrapState:
    def test_triggers(self):
        model = core_fsm(Variant.ENCRYPT)
        model.add_state("wedge")
        model.add_transition("idle", "wedge", "oops")
        findings = run_fsm_rule("fsm.trap-state", model)
        assert len(findings) == 1
        assert findings[0].severity.name == "WARNING"

    def test_clean(self):
        assert not run_fsm_rule("fsm.trap-state",
                                core_fsm(Variant.ENCRYPT))


class TestRoundCycles:
    def test_wrong_lap_cost_triggers(self):
        model = core_fsm(Variant.ENCRYPT)
        # A bypass edge that shortens the round loop by two clocks.
        model.add_transition("run_s2", "run_s0", "skip")
        findings = run_fsm_rule("fsm.round-cycles", model)
        assert any("3 cycles" in f.message for f in findings)

    def test_missing_loop_triggers(self):
        model = FsmModel(name="noloop", reset="a",
                         expected_round_cycles=5)
        model.add_state("a", "round")
        model.add_state("b", "round")
        model.add_transition("a", "b", "go")
        findings = run_fsm_rule("fsm.round-cycles", model)
        assert len(findings) == 1
        assert "cannot iterate" in findings[0].message

    def test_block_product_mismatch_triggers(self):
        per_round = cycles_per_round(False)
        model = core_fsm(Variant.ENCRYPT)
        model.expected_block_cycles = per_round * NUM_ROUNDS + 1
        findings = run_fsm_rule("fsm.round-cycles", model)
        assert len(findings) == 1
        assert "block latency" in findings[0].message

    def test_unset_expectation_skips(self):
        model = FsmModel(name="free", reset="a")
        model.add_state("a")
        model.add_transition("a", "a", "tick")
        assert not run_fsm_rule("fsm.round-cycles", model)
