"""repro.checks.proto: extraction, model checking, rules, CLI.

The shipped tree is the primary fixture: extraction must anchor
everything it looks for (``problems`` empty), the product-state
exploration must be exhaustive, fast and violation-free, and the
``proto.*`` pack must run silent under the default lint.  The
re-injection corpus (``test_proto_corpus.py``) owns the negative
space.
"""

import subprocess
import sys
from pathlib import Path

import pytest

from repro.checks.crypto_lint import SourceFile
from repro.checks.engine import (
    KIND_PROTO,
    CheckConfig,
    registry,
    run_rules,
)
from repro.checks.proto import (
    EXPECTED_RECOVERABLE,
    WIRE_BYTE_NAMES,
    ProtoSubject,
    analyze,
    build_input_classes,
    check_model,
    extract_wire_model,
    run_proto,
)
from repro.checks.runner import build_subjects, find_repo_root

ROOT = find_repo_root(Path(__file__))

PROTO_RULES = (
    "proto.unhandled-status",
    "proto.unreachable-state",
    "proto.desync-deadlock",
    "proto.unclassified-frame-error",
    "proto.response-not-framed",
    "proto.unbounded-buffering",
)


def _serve_sources():
    sources = []
    for path in sorted((ROOT / "src/repro/serve").glob("*.py")):
        display = str(path.relative_to(ROOT))
        sources.append(SourceFile.parse(display, path.read_text()))
    return sources


@pytest.fixture(scope="module")
def model():
    model = extract_wire_model(_serve_sources())
    assert model is not None
    return model


@pytest.fixture(scope="module")
def result(model):
    return check_model(model)


class TestExtraction:
    def test_extracts_clean(self, model):
        assert model.problems == ()

    def test_wire_constants(self, model):
        assert model.magic == b"RJ"
        assert model.version == 1
        assert model.header_format == ">2sBBBBIQ"
        assert model.header_bytes == 18
        assert model.max_payload == 1 << 20
        # Header plus the 16-byte optional trace extension plus the
        # payload cap: a traced frame at max payload still frames.
        assert model.max_frame == (1 << 20) + 18 + 16

    def test_enums(self, model):
        assert model.ops.names == (
            "LOAD_KEY", "ENCRYPT", "DECRYPT", "PING", "SHUTDOWN")
        assert model.modes.names == ("RAW", "ECB", "CTR", "GCM")
        assert model.statuses.names == (
            "OK", "BAD_FRAME", "BAD_REQUEST", "NO_KEY",
            "AUTH_FAILED", "TIMEOUT", "OVERLOADED",
            "SHUTTING_DOWN", "INTERNAL")
        assert model.statuses.value("INTERNAL") == 8
        assert set(model.retryable) == {
            "TIMEOUT", "OVERLOADED", "SHUTTING_DOWN"}

    def test_raise_sites_classified(self, model):
        by_function = {}
        for site in model.raise_sites:
            by_function.setdefault(site.function, set()).add(
                site.recoverable)
        # Every classified function raises with one consistent flag,
        # and it is the expected one.
        for function, expected in EXPECTED_RECOVERABLE.items():
            assert by_function[function] == {expected}, function

    def test_server_shape(self, model):
        server = model.server
        assert server.replies_on_frame_error
        assert server.continues_on_recoverable
        assert server.closes_on_unrecoverable
        assert server.shutdown_inline and server.shutdown_replies
        assert server.stop_task_created and server.stop_task_pinned
        assert server.has_backpressure
        assert server.worker_shielded
        assert server.send_frame_error_fallback
        assert server.gcm_cap_checked
        assert server.gcm_cap == (1 << 20) - 16
        assert set(server.handler_ops) == {
            "LOAD_KEY", "ENCRYPT", "DECRYPT", "PING"}
        assert ("ENCRYPT", "GCM") in server.crypto_pairs
        assert ("DECRYPT", "GCM") in server.crypto_pairs

    def test_client_shape(self, model):
        client = model.client
        assert client.uses_retry_set
        assert client.bounded_retries
        assert client.checks_request_id

    def test_partial_source_set_returns_none(self):
        sources = [s for s in _serve_sources()
                   if not s.path.endswith("server.py")]
        assert extract_wire_model(sources) is None


class TestDiagnosticHygiene:
    """FrameError messages carry lengths and enum values only —
    never raw wire bytes (satellite: decode_body diagnostic audit)."""

    def test_no_raise_site_interpolates_wire_bytes(self, model):
        leaky = [
            f"{site.path}:{site.lineno} interpolates "
            f"{sorted(set(site.raw_reads) & WIRE_BYTE_NAMES)}"
            for site in model.raise_sites
            if set(site.raw_reads) & WIRE_BYTE_NAMES
        ]
        assert not leaky, leaky

    def test_bad_magic_message_has_no_received_bytes(self):
        from repro.serve.protocol import FrameError, decode_body
        body = b"XX" + bytes(16)
        with pytest.raises(FrameError) as exc_info:
            decode_body(body)
        assert "XX" not in str(exc_info.value)
        assert exc_info.value.recoverable


class TestModelCheck:
    def test_no_violations_on_shipped_tree(self, result):
        assert list(result.violations) == []

    def test_exploration_is_exhaustive_and_fast(self, result):
        assert not result.truncated
        assert result.states > 50
        assert result.edges > result.states
        assert result.elapsed < 10.0

    def test_all_lifecycle_states_reachable(self, result):
        assert result.server_states == {
            "running", "draining", "stopped"}

    def test_every_emitted_status_reachable(self, model, result):
        emitted = {name for name, _ in model.server.emitted_statuses}
        assert emitted - {"OK"} <= result.reply_statuses

    def test_adversarial_input_classes_cover_issue_list(self, model):
        names = {c.name for c in build_input_classes(model)}
        # truncation, oversized prefix, bad magic/version, unknown
        # enum, mid-stream SHUTDOWN, worker exception — plus the
        # historical GCM expansion case.
        assert {"eof_mid_prefix", "eof_mid_frame",
                "oversized_prefix", "bad_magic", "bad_version",
                "unknown_enum", "shutdown", "handler_crash",
                "slow_request", "gcm_encrypt_max"} <= names


class TestRulePack:
    def test_rules_registered(self):
        rules = registry()
        for rule_id in PROTO_RULES:
            assert rule_id in rules, rule_id
            assert rules[rule_id].requires == KIND_PROTO

    def test_pack_silent_on_shipped_tree(self):
        subject = ProtoSubject(tuple(_serve_sources()))
        findings = run_rules(
            {KIND_PROTO: [subject]},
            CheckConfig(enable=("proto.*",)),
        )
        assert findings == []

    def test_subject_caches_analysis(self):
        subject = ProtoSubject(tuple(_serve_sources()))
        assert subject.analysis() is subject.analysis()

    def test_runner_builds_proto_subject(self):
        subjects = build_subjects(ROOT)
        protos = subjects[KIND_PROTO]
        assert len(protos) == 1
        paths = {s.path for s in protos[0].sources}
        assert any(p.endswith("protocol.py") for p in paths)
        assert any(p.endswith("server.py") for p in paths)
        assert any(p.endswith("client.py") for p in paths)

    def test_path_restricted_run_outside_serve_has_no_subject(self):
        subjects = build_subjects(
            ROOT, [ROOT / "src/repro/aes"])
        assert subjects[KIND_PROTO] == []


class TestReport:
    def test_run_proto_ok(self):
        report = run_proto(str(ROOT))
        assert report.ok
        text = report.render()
        assert "b'RJ'" in text
        assert ">2sBBBBIQ (18 bytes)" in text
        assert "violations: none" in text

    def test_render_lists_violations(self):
        mutated = []
        for source in _serve_sources():
            text_src = open(ROOT / source.path).read()
            if source.path.endswith("protocol.py"):
                text_src = text_src.replace(
                    "    INTERNAL = 8",
                    "    INTERNAL = 8\n    PAUSED = 9")
            mutated.append(SourceFile.parse(source.path, text_src))
        report = run_proto(str(ROOT), sources=mutated)
        assert not report.ok
        assert "proto.unhandled-status" in report.render()


class TestCli:
    def test_proto_command_exits_zero(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.cli", "proto"],
            cwd=ROOT, capture_output=True, text=True,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 0, proc.stderr
        assert "violations: none" in proc.stdout


class TestAnalyzeEntry:
    def test_analyze_without_serve_sources(self):
        analysis = analyze([])
        assert analysis.model is None
        assert analysis.violations == []
