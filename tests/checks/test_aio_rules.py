"""``aio.*`` rules: the PR-5 task-retention bug class, blocking calls
inside coroutines, dropped coroutine objects and cross-boundary
mutation."""

import textwrap

from repro.checks.crypto_lint import SourceFile
from repro.checks.engine import KIND_FLOW, CheckConfig, run_rules
from repro.checks.flow import FlowSubject


def lint(rule_id, config=None, /, **modules):
    sources = tuple(
        SourceFile.parse(f"{name}.py", textwrap.dedent(code))
        for name, code in modules.items()
    )
    return run_rules({KIND_FLOW: [FlowSubject(sources)]},
                     config, only=[rule_id])


class TestTaskNotRetained:
    def test_discarded_create_task_triggers(self):
        # The exact shape of the PR-5 production bug.
        findings = lint("aio.task-not-retained", mod="""
            import asyncio

            class Server:
                async def _handle(self):
                    asyncio.get_running_loop().create_task(
                        self.stop())

                async def stop(self):
                    pass
            """)
        assert len(findings) == 1
        assert "discarded" in findings[0].message

    def test_underscore_binding_triggers(self):
        findings = lint("aio.task-not-retained", mod="""
            import asyncio

            async def f(coro):
                _ = asyncio.create_task(coro)
            """)
        assert len(findings) == 1

    def test_never_read_local_triggers(self):
        findings = lint("aio.task-not-retained", mod="""
            import asyncio

            async def f(coro):
                task = asyncio.create_task(coro)
                return None
            """)
        assert len(findings) == 1
        assert "never read" in findings[0].message

    def test_attribute_pin_is_clean(self):
        # The PR-5 fix: pin the task on the instance.
        findings = lint("aio.task-not-retained", mod="""
            import asyncio

            class Server:
                async def _handle(self):
                    self._stop_task = asyncio.create_task(
                        self.stop())

                async def stop(self):
                    pass
            """)
        assert findings == []

    def test_awaited_local_is_clean(self):
        findings = lint("aio.task-not-retained", mod="""
            import asyncio

            async def f(coro):
                task = asyncio.create_task(coro)
                await task
            """)
        assert findings == []


class TestBlockingInCoroutine:
    def test_direct_sleep_triggers(self):
        findings = lint("aio.blocking-in-coroutine", mod="""
            import time

            async def f():
                time.sleep(0.1)
            """)
        assert len(findings) == 1
        assert "time.sleep" in findings[0].message

    def test_sync_crypto_entry_point_triggers(self):
        findings = lint("aio.blocking-in-coroutine", mod="""
            async def f(engine, key, data):
                return engine.xcrypt_ecb(key, data)
            """)
        assert len(findings) == 1

    def test_transitive_helper_chain_triggers_with_path(self):
        findings = lint("aio.blocking-in-coroutine", mod="""
            import time

            def leaf():
                time.sleep(1)

            def middle():
                leaf()

            async def f():
                middle()
            """)
        assert len(findings) == 1
        assert "middle -> leaf -> time.sleep" in \
            findings[0].message

    def test_asyncio_sleep_is_clean(self):
        findings = lint("aio.blocking-in-coroutine", mod="""
            import asyncio

            async def f():
                await asyncio.sleep(0.1)
            """)
        assert findings == []

    def test_executor_routing_is_clean(self):
        findings = lint("aio.blocking-in-coroutine", mod="""
            import asyncio

            async def f(engine, key, data):
                loop = asyncio.get_running_loop()
                return await loop.run_in_executor(
                    None, engine.xcrypt_ecb, key, data)
            """)
        assert findings == []


class TestUnawaitedCoroutine:
    def test_bare_statement_call_triggers(self):
        findings = lint("aio.unawaited-coroutine", mod="""
            class Server:
                async def run(self):
                    self.flush()

                async def flush(self):
                    pass
            """)
        assert len(findings) == 1
        assert "Server.flush" in findings[0].message

    def test_awaited_call_is_clean(self):
        findings = lint("aio.unawaited-coroutine", mod="""
            class Server:
                async def run(self):
                    await self.flush()

                async def flush(self):
                    pass
            """)
        assert findings == []

    def test_sync_receiver_method_is_clean(self):
        # writer.close() is synchronous; an unrelated class having an
        # async close() must not contaminate it.
        findings = lint("aio.unawaited-coroutine", mod="""
            class Client:
                async def close(self):
                    pass

            def shutdown(writer):
                writer.close()
            """)
        assert findings == []


class TestUnlockedSharedMutation:
    def test_unlocked_cross_boundary_mutation_triggers(self):
        findings = lint("aio.unlocked-shared-mutation", mod="""
            class Engine:
                async def submit_job(self, loop, job):
                    self.pending.append(job)
                    await loop.run_in_executor(None, self._drain)

                def _drain(self):
                    while self.pending:
                        self.pending.pop()
            """)
        assert len(findings) >= 2
        assert all("pending" in f.message for f in findings)

    def test_locked_mutation_is_clean(self):
        findings = lint("aio.unlocked-shared-mutation", mod="""
            class Engine:
                async def submit_job(self, loop, job):
                    async with self._lock:
                        self.pending.append(job)
                    await loop.run_in_executor(None, self._drain)

                def _drain(self):
                    with self._lock:
                        while self.pending:
                            self.pending.pop()
            """)
        assert findings == []

    def test_loop_only_state_is_clean(self):
        findings = lint("aio.unlocked-shared-mutation", mod="""
            class Engine:
                async def submit_job(self, loop, job):
                    self.stats += 1
                    await loop.run_in_executor(None, self._work)

                def _work(self):
                    return 1
            """)
        assert findings == []
