"""VHDL structural checks: the raising `repro.hdl.lint` API, its
non-raising adapter, and the rule-engine wrappers."""

import pytest

from repro.checks.engine import KIND_VHDL, run_rules
from repro.hdl.lint import LintError, check_vhdl, lint_vhdl

GOOD_VHDL = """\
library ieee;
use ieee.std_logic_1164.all;

entity blinker is
  port (
    clk  : in  std_logic;
    q    : out std_logic
  );
end entity blinker;

architecture rtl of blinker is
  signal state : std_logic := '0';
begin
  tick : process (clk)
  begin
    if rising_edge(clk) then
      state <= not state;
    end if;
  end process;
  q <= state;
end architecture rtl;
"""


def run_vhdl_rule(rule_id, filename, text):
    return run_rules({KIND_VHDL: [(filename, text)]}, only=[rule_id])


class TestLintVhdl:
    def test_clean_file_reports_structure(self):
        report = lint_vhdl(GOOD_VHDL, "blinker.vhd")
        assert report.entities == ("blinker",)
        assert report.architectures == (("rtl", "blinker"),)
        assert report.processes == 1
        assert set(report.ports) == {"clk", "q"}

    def test_entity_end_mismatch(self):
        bad = GOOD_VHDL.replace("end entity blinker;",
                                "end entity strobe;")
        with pytest.raises(LintError, match="entity/end-entity"):
            lint_vhdl(bad, "x.vhd")

    def test_architecture_end_mismatch(self):
        bad = GOOD_VHDL.replace("end architecture rtl;", "")
        with pytest.raises(LintError, match="architecture/end"):
            lint_vhdl(bad, "x.vhd")

    def test_architecture_of_unknown_entity(self):
        bad = GOOD_VHDL.replace("architecture rtl of blinker",
                                "architecture rtl of mystery")
        with pytest.raises(LintError, match="unknown"):
            lint_vhdl(bad, "x.vhd")

    def test_package_end_mismatch(self):
        bad = "package tools is\nend package utils;\n"
        with pytest.raises(LintError, match="package"):
            lint_vhdl(bad, "x.vhd")

    def test_process_end_mismatch(self):
        bad = GOOD_VHDL.replace("end process;", "")
        with pytest.raises(LintError, match="process"):
            lint_vhdl(bad, "x.vhd")

    def test_if_imbalance(self):
        bad = GOOD_VHDL.replace("    end if;\n", "")
        with pytest.raises(LintError, match="if/end-if"):
            lint_vhdl(bad, "x.vhd")

    def test_case_imbalance(self):
        bad = GOOD_VHDL.replace(
            "q <= state;",
            "q <= state;\n  -- next line opens a case\n"
        ).replace("begin\n  tick",
                  "begin\n  case state is\n  tick")
        with pytest.raises(LintError, match="case"):
            lint_vhdl(bad, "x.vhd")

    def test_unused_port(self):
        bad = GOOD_VHDL.replace("q <= state;", "")
        with pytest.raises(LintError, match="port 'q'"):
            lint_vhdl(bad, "x.vhd")

    def test_comments_are_ignored(self):
        commented = GOOD_VHDL + "-- if this comment opened an if\n"
        lint_vhdl(commented, "x.vhd")  # must not raise


class TestCheckVhdl:
    def test_clean_returns_empty(self):
        assert check_vhdl(GOOD_VHDL, "x.vhd") == ()

    def test_violation_returns_message(self):
        bad = GOOD_VHDL.replace("end entity blinker;",
                                "end entity strobe;")
        messages = check_vhdl(bad, "x.vhd")
        assert len(messages) == 1
        assert "entity/end-entity" in messages[0]


class TestVhdlStructureRule:
    def test_triggers_on_bad_file(self):
        bad = GOOD_VHDL.replace("end entity blinker;",
                                "end entity strobe;")
        findings = run_vhdl_rule("hdl.vhdl-structure", "x.vhd", bad)
        assert len(findings) == 1
        assert findings[0].location.file == "x.vhd"
        # The filename prefix is stripped into the location.
        assert not findings[0].message.startswith("x.vhd")

    def test_clean_file_is_silent(self):
        assert not run_vhdl_rule("hdl.vhdl-structure", "x.vhd",
                                 GOOD_VHDL)

    def test_non_vhdl_files_are_skipped(self):
        assert not run_vhdl_rule("hdl.vhdl-structure", "readme.md",
                                 "entity nonsense")


class TestSboxRomsInitialized:
    def _rom_constant(self, entries):
        body = ", ".join(f'x"{i % 256:02x}"' for i in range(entries))
        return (f"constant TABLE : rom_256x8_t := ({body});\n")

    def test_full_rom_is_fine(self):
        text = self._rom_constant(256)
        assert not run_vhdl_rule("hdl.sbox-roms-initialized",
                                 "rom.vhd", text)

    def test_truncated_rom_triggers(self):
        text = self._rom_constant(255)
        findings = run_vhdl_rule("hdl.sbox-roms-initialized",
                                 "rom.vhd", text)
        assert len(findings) == 1
        assert "255 bytes" in findings[0].message


class TestGeneratedVhdlClean:
    def test_shipped_generator_output_passes_all_hdl_rules(self):
        from repro.hdl.vhdl_gen import generate_core_vhdl
        from repro.ip.control import Variant

        subjects = []
        for variant in Variant:
            for name, text in generate_core_vhdl(variant).items():
                subjects.append((f"{variant.value}/{name}", text))
        assert subjects
        findings = run_rules(
            {KIND_VHDL: subjects},
            only=["hdl.vhdl-structure", "hdl.sbox-roms-initialized"],
        )
        assert findings == []
