"""The obs.counter-divergence rule: clean on the shipped core,
loud when observation and model disagree."""

import pytest

from repro.checks.engine import KIND_OBS, registry, run_rules
from repro.checks.fsm import core_fsm
from repro.checks.obs import (
    ObsSubject,
    observe_run,
    paper_obs_subjects,
)
from repro.ip.control import Variant

RULE = "obs.counter-divergence"


class TestRegistration:
    def test_rule_registered_with_obs_kind(self):
        rules = registry()
        assert RULE in rules
        assert rules[RULE].requires == KIND_OBS

    def test_paper_subjects_cover_every_flavour(self):
        subjects = paper_obs_subjects()
        assert len(subjects) == 6
        assert {s.variant for s in subjects} == set(Variant)
        assert {s.sync_rom for s in subjects} == {False, True}


class TestCleanCore:
    @pytest.mark.parametrize("variant", list(Variant))
    def test_all_three_variants_pass(self, variant):
        findings = run_rules(
            {KIND_OBS: [ObsSubject(variant)]}, only=[RULE]
        )
        assert findings == []

    @pytest.mark.parametrize("variant", list(Variant))
    def test_sync_rom_flavours_pass(self, variant):
        findings = run_rules(
            {KIND_OBS: [ObsSubject(variant, sync_rom=True)]},
            only=[RULE],
        )
        assert findings == []


class TestDivergenceDetection:
    """Damage the observed evidence the way a sequencing bug would
    (the shipped core cannot be made to diverge, so the observation
    step is monkeypatched) and assert the rule notices."""

    def test_divergent_run_reports_findings(self, monkeypatch):
        import repro.checks.obs as obs_mod

        subject = ObsSubject(Variant.ENCRYPT)
        counters, setup = observe_run(subject)
        counters.bytesub_cycles -= 1       # lost datapath event
        counters.key_words += 4            # phantom schedule word
        monkeypatch.setattr(obs_mod, "observe_run",
                            lambda s: (counters, setup))
        findings = run_rules({KIND_OBS: [subject]}, only=[RULE])
        assert len(findings) == 2
        messages = " ".join(f.message for f in findings)
        assert "bytesub_cycles" in messages
        assert "key_words" in messages

    def test_wrong_block_latency_reports_finding(self, monkeypatch):
        import repro.checks.obs as obs_mod
        from dataclasses import replace

        subject = ObsSubject(Variant.ENCRYPT)
        counters, setup = observe_run(subject)
        record = counters.block_records[0]
        counters.block_records[0] = replace(
            record, end_cycle=record.end_cycle + 1
        )
        monkeypatch.setattr(obs_mod, "observe_run",
                            lambda s: (counters, setup))
        findings = run_rules({KIND_OBS: [subject]}, only=[RULE])
        assert any("51 cycles" in f.message for f in findings)

    def test_protocol_errors_fail(self, monkeypatch):
        import repro.checks.obs as obs_mod

        subject = ObsSubject(Variant.ENCRYPT)
        counters, setup = observe_run(subject)
        counters.protocol_errors = 3
        monkeypatch.setattr(obs_mod, "observe_run",
                            lambda s: (counters, setup))
        findings = run_rules({KIND_OBS: [subject]}, only=[RULE])
        assert any("protocol" in f.message for f in findings)


class TestModelAlignment:
    @pytest.mark.parametrize("sync_rom", (False, True))
    def test_fsm_model_and_expected_counters_agree(self, sync_rom):
        """The two independent model sources must declare the same
        block cost, or the rule would contradict itself."""
        from repro.obs.hwcounters import expected_counters

        for variant in Variant:
            model = core_fsm(variant, sync_rom)
            exp = expected_counters(variant, sync_rom, 1)
            assert model.expected_block_cycles == exp["block_cycles"]
            assert model.expected_round_cycles == \
                exp["events_per_round"]
            assert model.rounds_per_block * 4 == exp["bytesub_cycles"]
