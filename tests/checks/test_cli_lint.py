"""The `repro-aes lint` subcommand and the runner it wraps.

The acceptance bar for the subsystem: exit 0 on the clean shipped
tree, non-zero when a violation of *each* analyzer family is seeded.
"""

import json

from repro.checks.engine import (
    KIND_DESIGN,
    KIND_EQUIV,
    KIND_FLOW,
    KIND_FSM,
    KIND_NETLIST,
    KIND_PROTO,
    KIND_SOURCE,
    KIND_STA,
    KIND_VHDL,
    Severity,
)
from repro.checks.fsm import core_fsm
from repro.checks.netgraph import CellKind, Design
from repro.checks.runner import (
    build_subjects,
    find_repo_root,
    run_lint,
)
from repro.cli import main

ROOT = find_repo_root()


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


def empty_subjects():
    return {KIND_DESIGN: [], KIND_NETLIST: [], KIND_FSM: [],
            KIND_SOURCE: [], KIND_VHDL: [], KIND_STA: [],
            KIND_EQUIV: [], KIND_FLOW: []}


class TestCleanTree:
    def test_shipped_tree_lints_clean(self):
        result = run_lint(root=ROOT)
        assert result.findings == []
        assert result.exit_code == 0
        # The sanctioned warnings are suppressed, not silenced.
        assert len(result.suppressed) == 4
        assert result.stale_fingerprints == []

    def test_subjects_cover_every_family(self):
        subjects = build_subjects(ROOT)
        for kind in (KIND_DESIGN, KIND_NETLIST, KIND_FSM,
                     KIND_SOURCE, KIND_VHDL, KIND_STA, KIND_EQUIV,
                     KIND_FLOW, KIND_PROTO):
            assert subjects[kind], kind

    def test_sta_subjects_cover_both_table2_devices(self):
        subjects = build_subjects(ROOT)
        families = {s.device.family for s in subjects[KIND_STA]}
        assert families == {"Acex1K", "Cyclone"}
        assert len(subjects[KIND_STA]) == 6


class TestSeededViolationsFailPerFamily:
    """Each family must be able to fail the run on its own."""

    def _exit_code(self, kind, subject):
        subjects = empty_subjects()
        subjects[kind] = [subject]
        return run_lint(root=ROOT, subjects=subjects).exit_code

    def test_design_family(self):
        design = Design("seeded")
        design.add_cell("f", CellKind.COMB, x=("in", 1),
                        y=("out", 1))
        design.add_net("fb", 1)
        design.connect("fb", "f", "y")
        design.connect("fb", "f", "x")  # self combinational loop
        assert self._exit_code(KIND_DESIGN, design) == 1

    def test_netlist_family(self):
        from repro.arch.spec import PAPER_SPECS
        from repro.checks.netlist_drc import NetlistSubject
        from repro.fpga.aes_netlists import build_netlist

        spec = PAPER_SPECS["encrypt"]
        netlist = build_netlist(spec)
        netlist.add_rom("sbox_extra", 256, 8, count=1)
        subject = NetlistSubject(spec, netlist)
        assert self._exit_code(KIND_NETLIST, subject) == 1

    def test_fsm_family(self):
        from repro.ip.control import Variant

        model = core_fsm(Variant.ENCRYPT)
        model.add_state("orphan")
        assert self._exit_code(KIND_FSM, model) == 1

    def test_source_family(self):
        from repro.checks.crypto_lint import SourceFile

        source = SourceFile.parse(
            "seeded.py",
            "def f(key):\n    if key[0]:\n        pass\n",
        )
        assert self._exit_code(KIND_SOURCE, source) == 1

    def test_flow_family(self):
        from repro.checks.crypto_lint import SourceFile
        from repro.checks.flow import FlowSubject

        source = SourceFile.parse(
            "seeded.py",
            "import time\n\n"
            "async def f():\n    time.sleep(1)\n",
        )
        assert self._exit_code(
            KIND_FLOW, FlowSubject((source,))) == 1

    def test_vhdl_family(self):
        bad = ("entity a is\nend entity b;\n"
               "architecture r of a is\nbegin\n"
               "end architecture r;\n")
        assert self._exit_code(KIND_VHDL, ("bad.vhd", bad)) == 1

    def test_sta_family(self):
        import dataclasses

        from repro.checks.sta import StaSubject, paper_sta_subjects
        from repro.fpga.devices import EP1K100

        base = paper_sta_subjects()[0]
        slow = dataclasses.replace(EP1K100, t_route=2.0)
        subject = StaSubject(base.spec, slow, base.design)
        assert self._exit_code(KIND_STA, subject) == 1

    def test_equiv_family(self, monkeypatch):
        from repro.checks import equiv

        broken = list(equiv.TABLES["S"])
        broken[0] ^= 0x01
        monkeypatch.setitem(equiv.TABLES, "S", tuple(broken))
        equiv.clear_cache()
        subject = equiv.paper_equiv_subjects()[0]
        try:
            assert self._exit_code(KIND_EQUIV, subject) == 1
        finally:
            equiv.clear_cache()

    def test_warnings_alone_do_not_fail(self):
        from repro.checks.crypto_lint import SourceFile

        source = SourceFile.parse(
            "seeded.py", 'SESSION_KEY = b"\\x00" * 16\n'
        )
        subjects = empty_subjects()
        subjects[KIND_SOURCE] = [source]
        result = run_lint(root=ROOT, subjects=subjects)
        assert result.worst is Severity.WARNING
        assert result.exit_code == 0


class TestCliSurface:
    def test_lint_exits_zero_on_clean_tree(self, capsys):
        code, out = run_cli(capsys, "lint", "--root", str(ROOT))
        assert code == 0
        assert "no findings" in out
        assert "4 suppressed" in out

    def test_strict_is_still_clean(self, capsys):
        code, _ = run_cli(capsys, "lint", "--strict",
                          "--root", str(ROOT))
        assert code == 0

    def test_json_output(self, capsys):
        code, out = run_cli(capsys, "lint", "--json",
                            "--root", str(ROOT))
        assert code == 0
        payload = json.loads(out)
        assert payload["findings"] == []
        assert len(payload["suppressed"]) == 4
        assert payload["summary"]["error"] == 0

    def test_list_rules(self, capsys):
        code, out = run_cli(capsys, "lint", "--list-rules")
        assert code == 0
        for rule_id in ("drc.comb-loop", "fsm.round-cycles",
                        "ct.secret-branch", "hdl.vhdl-structure",
                        "struct.paper-invariants"):
            assert rule_id in out

    def test_disable_family(self, capsys):
        # With ct.* disabled nothing remains to suppress.
        code, out = run_cli(capsys, "lint", "--disable", "ct.*",
                            "--root", str(ROOT))
        assert code == 0
        assert "suppressed" not in out

    def test_seeded_source_fails_through_cli(self, capsys, tmp_path):
        bad = tmp_path / "leaky.py"
        bad.write_text(
            "def f(key, t):\n    return t[key[0]]\n"
        )
        code, out = run_cli(capsys, "lint", "--root", str(ROOT),
                            str(bad))
        assert code == 1
        assert "ct.secret-index" in out

    def test_write_baseline_round_trip(self, capsys, tmp_path):
        bad = tmp_path / "leaky.py"
        bad.write_text(
            "def f(key, t):\n    return t[key[0]]\n"
        )
        baseline = tmp_path / "baseline.json"
        code, out = run_cli(
            capsys, "lint", "--root", str(ROOT), str(bad),
            "--baseline", str(baseline), "--write-baseline",
        )
        assert code == 0
        assert baseline.exists()
        # With the violation baselined, the same run now passes.
        code, out = run_cli(
            capsys, "lint", "--root", str(ROOT), str(bad),
            "--baseline", str(baseline),
        )
        assert code == 0
        assert "suppressed" in out

    def test_sarif_output_is_valid_and_empty_on_clean_tree(
            self, capsys):
        code, out = run_cli(capsys, "lint", "--format", "sarif",
                            "--root", str(ROOT))
        assert code == 0
        payload = json.loads(out)
        assert payload["version"] == "2.1.0"
        run = payload["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-aes-lint"
        assert run["results"] == []

    def test_sarif_carries_findings_with_fingerprints(
            self, capsys, tmp_path):
        bad = tmp_path / "leaky.py"
        bad.write_text("def f(key, t):\n    return t[key[0]]\n")
        code, out = run_cli(capsys, "lint", "--format", "sarif",
                            "--root", str(ROOT), str(bad))
        assert code == 1
        payload = json.loads(out)
        run = payload["runs"][0]
        result = run["results"][0]
        assert result["ruleId"] == "ct.secret-index"
        assert result["level"] == "error"
        assert result["partialFingerprints"]
        rule_ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
        assert "ct.secret-index" in rule_ids

    def test_stale_baseline_warns_then_prunes(self, capsys,
                                              tmp_path):
        bad = tmp_path / "leaky.py"
        bad.write_text("def f(key, t):\n    return t[key[0]]\n")
        baseline = tmp_path / "baseline.json"
        run_cli(capsys, "lint", "--root", str(ROOT), str(bad),
                "--baseline", str(baseline), "--write-baseline")
        # Fix the finding: its baseline entry is now stale.
        bad.write_text("def f(key, t):\n    return t[0]\n")
        code, out = run_cli(capsys, "lint", "--root", str(ROOT),
                            str(bad), "--baseline", str(baseline))
        assert code == 0  # stale entries warn on default runs
        assert "stale" in out
        code, out = run_cli(
            capsys, "lint", "--root", str(ROOT), str(bad),
            "--baseline", str(baseline), "--write-baseline",
        )
        assert code == 0
        assert "1 stale entry removed" in out
        # After pruning the warning is gone.
        code, out = run_cli(capsys, "lint", "--root", str(ROOT),
                            str(bad), "--baseline", str(baseline))
        assert code == 0
        assert "stale" not in out

    def test_stale_baseline_fails_under_strict(self, capsys,
                                               tmp_path):
        bad = tmp_path / "leaky.py"
        bad.write_text("def f(key, t):\n    return t[key[0]]\n")
        baseline = tmp_path / "baseline.json"
        run_cli(capsys, "lint", "--root", str(ROOT), str(bad),
                "--baseline", str(baseline), "--write-baseline")
        # Fix the finding: CI (--strict) must now fail on the stale
        # suppression instead of letting the baseline drift.
        bad.write_text("def f(key, t):\n    return t[0]\n")
        code = main(["lint", "--strict", "--root", str(ROOT),
                     str(bad), "--baseline", str(baseline)])
        captured = capsys.readouterr()
        assert code == 1
        assert "stale" in captured.out + captured.err
        # --write-baseline stays the local escape hatch.
        code, _ = run_cli(capsys, "lint", "--root", str(ROOT),
                          str(bad), "--baseline", str(baseline),
                          "--write-baseline")
        assert code == 0
        code = main(["lint", "--strict", "--root", str(ROOT),
                     str(bad), "--baseline", str(baseline)])
        capsys.readouterr()
        assert code == 0

    def test_sta_command_reports_all_six_rows(self, capsys):
        code, out = run_cli(capsys, "sta")
        assert code == 0
        for label in ("paper_encrypt@Acex1K", "paper_both@Cyclone"):
            assert label in out

    def test_sta_command_filters(self, capsys):
        code, out = run_cli(capsys, "sta", "--variant", "decrypt",
                            "--device", "Cyclone")
        assert code == 0
        assert "paper_decrypt@Cyclone" in out
        assert "Acex1K" not in out

    def test_corrupt_baseline_is_a_clean_error(self, capsys,
                                               tmp_path):
        corrupt = tmp_path / "corrupt.json"
        corrupt.write_text("{broken")
        code = main(["lint", "--root", str(ROOT),
                     "--baseline", str(corrupt)])
        captured = capsys.readouterr()
        assert code == 2
        assert "not valid JSON" in captured.err

    def test_verbose_lists_suppressed(self, capsys):
        code, out = run_cli(capsys, "lint", "--verbose",
                            "--root", str(ROOT))
        assert code == 0
        assert "suppressed by baseline" in out
        assert "ct.key-global" in out


class TestChangedMode:
    """`lint --changed [BASE]`: git-diff-scoped per-file runs."""

    @staticmethod
    def _git_repo(tmp_path):
        import subprocess

        def git(*argv):
            subprocess.run(
                ["git", *argv], cwd=tmp_path, check=True,
                capture_output=True,
                env={"GIT_AUTHOR_NAME": "t", "GIT_AUTHOR_EMAIL": "t@t",
                     "GIT_COMMITTER_NAME": "t",
                     "GIT_COMMITTER_EMAIL": "t@t",
                     "PATH": "/usr/bin:/bin",
                     "HOME": str(tmp_path)},
            )

        (tmp_path / "src/repro/aes").mkdir(parents=True)
        (tmp_path / "src/repro/serve").mkdir(parents=True)
        (tmp_path / "src/repro/aes/x.py").write_text("A = 1\n")
        (tmp_path / "unscoped.py").write_text("B = 1\n")
        git("init", "-q")
        git("add", "-A")
        git("commit", "-q", "-m", "seed")
        return git

    def test_changed_sources_scope(self, tmp_path):
        from repro.cli import _changed_sources

        self._git_repo(tmp_path)
        # One tracked file modified, one untracked in scope, one
        # modification outside the default source trees.
        (tmp_path / "src/repro/aes/x.py").write_text("A = 2\n")
        (tmp_path / "src/repro/serve/new.py").write_text("C = 3\n")
        (tmp_path / "unscoped.py").write_text("B = 2\n")
        changed = _changed_sources(tmp_path, "HEAD")
        names = [str(p.relative_to(tmp_path)) for p in changed]
        assert names == ["src/repro/aes/x.py",
                         "src/repro/serve/new.py"]

    def test_changed_sources_bad_ref_is_none(self, tmp_path):
        from repro.cli import _changed_sources

        self._git_repo(tmp_path)
        assert _changed_sources(tmp_path, "no-such-ref") is None

    def test_changed_and_paths_are_exclusive(self, capsys):
        code, _ = run_cli(capsys, "lint", "--changed",
                          "src/repro/aes")
        captured = capsys.readouterr()
        assert code == 2

    def test_changed_keeps_whole_program_packs(self, tmp_path):
        """--changed restricts KIND_SOURCE but flow/proto subjects
        stay on the full package (full_flow mode)."""
        one_file = [ROOT / "src/repro/aes/constants.py"]
        restricted = build_subjects(ROOT, one_file)
        assert restricted[KIND_PROTO] == []
        full = build_subjects(ROOT, one_file, full_flow=True)
        assert len(full[KIND_PROTO]) == 1
        # The per-file scope is still just the requested file.
        assert len(full[KIND_SOURCE]) == 1


class TestScopedStaleness:
    """Stale baseline entries only count against runs that could
    have re-produced them (rule enabled AND file scanned)."""

    def _stale_fixture(self, capsys, tmp_path):
        bad = tmp_path / "leaky.py"
        bad.write_text("def f(key, t):\n    return t[key[0]]\n")
        baseline = tmp_path / "baseline.json"
        run_cli(capsys, "lint", "--root", str(ROOT), str(bad),
                "--baseline", str(baseline), "--write-baseline")
        bad.write_text("def f(key, t):\n    return t[0]\n")
        return bad, baseline

    def test_disabled_rule_entries_are_out_of_scope(self, capsys,
                                                    tmp_path):
        bad, baseline = self._stale_fixture(capsys, tmp_path)
        # The recorded entry is a ct.* finding; a serve.*-only run
        # could never re-produce it, so it is not stale there.
        code = main(["lint", "--strict", "--enable", "serve.*",
                     "--root", str(ROOT), str(bad),
                     "--baseline", str(baseline)])
        capsys.readouterr()
        assert code == 0

    def test_unscanned_file_entries_are_out_of_scope(self, capsys,
                                                     tmp_path):
        bad, baseline = self._stale_fixture(capsys, tmp_path)
        other = tmp_path / "clean.py"
        other.write_text("X = 1\n")
        # Same rules enabled, but the recorded file is not scanned.
        code = main(["lint", "--strict", "--root", str(ROOT),
                     str(other), "--baseline", str(baseline)])
        capsys.readouterr()
        assert code == 0

    def test_full_run_still_fails_on_stale(self, capsys, tmp_path):
        bad, baseline = self._stale_fixture(capsys, tmp_path)
        code = main(["lint", "--strict", "--root", str(ROOT),
                     str(bad), "--baseline", str(baseline)])
        capsys.readouterr()
        assert code == 1


class TestProtoGate:
    def test_proto_pack_strict_gate_is_clean(self, capsys):
        code, _ = run_cli(capsys, "lint", "--strict",
                          "--enable", "proto.*",
                          "--root", str(ROOT))
        assert code == 0

    def test_proto_command_reports_clean(self, capsys):
        code, out = run_cli(capsys, "proto")
        assert code == 0
        assert "violations: none" in out
