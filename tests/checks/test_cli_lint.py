"""The `repro-aes lint` subcommand and the runner it wraps.

The acceptance bar for the subsystem: exit 0 on the clean shipped
tree, non-zero when a violation of *each* analyzer family is seeded.
"""

import json

from repro.checks.engine import (
    KIND_DESIGN,
    KIND_FSM,
    KIND_NETLIST,
    KIND_SOURCE,
    KIND_VHDL,
    Severity,
)
from repro.checks.fsm import core_fsm
from repro.checks.netgraph import CellKind, Design
from repro.checks.runner import (
    build_subjects,
    find_repo_root,
    run_lint,
)
from repro.cli import main

ROOT = find_repo_root()


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


def empty_subjects():
    return {KIND_DESIGN: [], KIND_NETLIST: [], KIND_FSM: [],
            KIND_SOURCE: [], KIND_VHDL: []}


class TestCleanTree:
    def test_shipped_tree_lints_clean(self):
        result = run_lint(root=ROOT)
        assert result.findings == []
        assert result.exit_code == 0
        # The sanctioned warnings are suppressed, not silenced.
        assert len(result.suppressed) == 4
        assert result.stale_fingerprints == []

    def test_subjects_cover_every_family(self):
        subjects = build_subjects(ROOT)
        for kind in (KIND_DESIGN, KIND_NETLIST, KIND_FSM,
                     KIND_SOURCE, KIND_VHDL):
            assert subjects[kind], kind


class TestSeededViolationsFailPerFamily:
    """Each family must be able to fail the run on its own."""

    def _exit_code(self, kind, subject):
        subjects = empty_subjects()
        subjects[kind] = [subject]
        return run_lint(root=ROOT, subjects=subjects).exit_code

    def test_design_family(self):
        design = Design("seeded")
        design.add_cell("f", CellKind.COMB, x=("in", 1),
                        y=("out", 1))
        design.add_net("fb", 1)
        design.connect("fb", "f", "y")
        design.connect("fb", "f", "x")  # self combinational loop
        assert self._exit_code(KIND_DESIGN, design) == 1

    def test_netlist_family(self):
        from repro.arch.spec import PAPER_SPECS
        from repro.checks.netlist_drc import NetlistSubject
        from repro.fpga.aes_netlists import build_netlist

        spec = PAPER_SPECS["encrypt"]
        netlist = build_netlist(spec)
        netlist.add_rom("sbox_extra", 256, 8, count=1)
        subject = NetlistSubject(spec, netlist)
        assert self._exit_code(KIND_NETLIST, subject) == 1

    def test_fsm_family(self):
        from repro.ip.control import Variant

        model = core_fsm(Variant.ENCRYPT)
        model.add_state("orphan")
        assert self._exit_code(KIND_FSM, model) == 1

    def test_source_family(self):
        from repro.checks.crypto_lint import SourceFile

        source = SourceFile.parse(
            "seeded.py",
            "def f(key):\n    if key[0]:\n        pass\n",
        )
        assert self._exit_code(KIND_SOURCE, source) == 1

    def test_vhdl_family(self):
        bad = ("entity a is\nend entity b;\n"
               "architecture r of a is\nbegin\n"
               "end architecture r;\n")
        assert self._exit_code(KIND_VHDL, ("bad.vhd", bad)) == 1

    def test_warnings_alone_do_not_fail(self):
        from repro.checks.crypto_lint import SourceFile

        source = SourceFile.parse(
            "seeded.py", 'SESSION_KEY = b"\\x00" * 16\n'
        )
        subjects = empty_subjects()
        subjects[KIND_SOURCE] = [source]
        result = run_lint(root=ROOT, subjects=subjects)
        assert result.worst is Severity.WARNING
        assert result.exit_code == 0


class TestCliSurface:
    def test_lint_exits_zero_on_clean_tree(self, capsys):
        code, out = run_cli(capsys, "lint", "--root", str(ROOT))
        assert code == 0
        assert "no findings" in out
        assert "4 suppressed" in out

    def test_strict_is_still_clean(self, capsys):
        code, _ = run_cli(capsys, "lint", "--strict",
                          "--root", str(ROOT))
        assert code == 0

    def test_json_output(self, capsys):
        code, out = run_cli(capsys, "lint", "--json",
                            "--root", str(ROOT))
        assert code == 0
        payload = json.loads(out)
        assert payload["findings"] == []
        assert len(payload["suppressed"]) == 4
        assert payload["summary"]["error"] == 0

    def test_list_rules(self, capsys):
        code, out = run_cli(capsys, "lint", "--list-rules")
        assert code == 0
        for rule_id in ("drc.comb-loop", "fsm.round-cycles",
                        "ct.secret-branch", "hdl.vhdl-structure",
                        "struct.paper-invariants"):
            assert rule_id in out

    def test_disable_family(self, capsys):
        # With ct.* disabled nothing remains to suppress.
        code, out = run_cli(capsys, "lint", "--disable", "ct.*",
                            "--root", str(ROOT))
        assert code == 0
        assert "suppressed" not in out

    def test_seeded_source_fails_through_cli(self, capsys, tmp_path):
        bad = tmp_path / "leaky.py"
        bad.write_text(
            "def f(key, t):\n    return t[key[0]]\n"
        )
        code, out = run_cli(capsys, "lint", "--root", str(ROOT),
                            str(bad))
        assert code == 1
        assert "ct.secret-index" in out

    def test_write_baseline_round_trip(self, capsys, tmp_path):
        bad = tmp_path / "leaky.py"
        bad.write_text(
            "def f(key, t):\n    return t[key[0]]\n"
        )
        baseline = tmp_path / "baseline.json"
        code, out = run_cli(
            capsys, "lint", "--root", str(ROOT), str(bad),
            "--baseline", str(baseline), "--write-baseline",
        )
        assert code == 0
        assert baseline.exists()
        # With the violation baselined, the same run now passes.
        code, out = run_cli(
            capsys, "lint", "--root", str(ROOT), str(bad),
            "--baseline", str(baseline),
        )
        assert code == 0
        assert "suppressed" in out

    def test_corrupt_baseline_is_a_clean_error(self, capsys,
                                               tmp_path):
        corrupt = tmp_path / "corrupt.json"
        corrupt.write_text("{broken")
        code = main(["lint", "--root", str(ROOT),
                     "--baseline", str(corrupt)])
        captured = capsys.readouterr()
        assert code == 2
        assert "not valid JSON" in captured.err

    def test_verbose_lists_suppressed(self, capsys):
        code, out = run_cli(capsys, "lint", "--verbose",
                            "--root", str(ROOT))
        assert code == 0
        assert "suppressed by baseline" in out
        assert "ct.key-global" in out
