"""Re-injection corpus for the wire-protocol model checker.

Each test plants a bug into the *real* shipped serve-layer text —
both historical production bugs and synthetic ones — and asserts the
``proto.*`` pack flags it (and nothing else it shouldn't).  The
needles are pin-guarded: if a refactor moves the code, the assertion
on the needle fails first so the corpus is updated rather than
silently testing nothing.
"""

from pathlib import Path

import pytest

from repro.checks.crypto_lint import SourceFile
from repro.checks.engine import KIND_PROTO, CheckConfig, run_rules
from repro.checks.proto import ProtoSubject, analyze
from repro.checks.runner import find_repo_root

ROOT = find_repo_root(Path(__file__))

PROTO_CONFIG = CheckConfig(enable=("proto.*",))

# ------------------------------------------------------------- needles
# Historical bug A: the GCM ENCRYPT plaintext cap (PR-5 review fix).
# Removing it lets a ciphertext+tag response exceed MAX_PAYLOAD and
# raise FrameError on the send path.
GCM_CAP_CHECK = "    if len(plaintext) > GCM_MAX_PLAINTEXT_BYTES:"

# The two nets that caught the escaped FrameError after the fix: the
# _send fallback and the worker shield.  Removing cap + both nets
# reproduces the original worker-killing DoS.
SEND_FALLBACK = "\n        except FrameError as exc:"
WORKER_SHIELD = "\n            except Exception:"

# Historical bug B: the SHUTDOWN stop() task pin (weak-ref GC hazard).
STOP_TASK_PIN = """                if self._stop_task is None:
                    self._stop_task = (
                        asyncio.get_running_loop()
                        .create_task(self.stop())
                    )"""
STOP_TASK_UNPINNED = """                asyncio.get_running_loop() \\
                    .create_task(self.stop())"""

# Synthetic bug C: a Status member nobody emits or dispatches.
STATUS_TAIL = "    INTERNAL = 8"

# Synthetic bug D: decode_payload's bad-magic raise with the wrong
# flag (the zero-copy split decoder the streaming reader parses
# through).
BAD_MAGIC_RAISE = \
    'raise FrameError(f"bad magic (want {MAGIC!r})")'

# Synthetic bug E: the connection loop keeps reading after an
# unrecoverable (desynchronizing) FrameError.
RECOVERABLE_BRANCH = """                if exc.recoverable:
                    continue
                return"""


def _sources(mutate=None):
    sources = []
    for path in sorted((ROOT / "src/repro/serve").glob("*.py")):
        display = str(path.relative_to(ROOT))
        text = path.read_text()
        if mutate is not None:
            text = mutate(display, text)
        sources.append(SourceFile.parse(display, text))
    return sources


def _mutate_file(filename, needle, replacement):
    def mutate(display, text):
        if display.endswith(filename):
            assert needle in text, (
                f"corpus needle missing from {display}; the code "
                "moved — update the corpus pin")
            return text.replace(needle, replacement)
        return text
    return mutate


def _findings(mutate):
    subject = ProtoSubject(tuple(_sources(mutate)))
    return run_rules({KIND_PROTO: [subject]}, PROTO_CONFIG)


def _rules(findings):
    return {f.rule for f in findings}


def test_unmutated_tree_is_silent():
    assert _findings(None) == []


class TestHistoricalBugs:
    def test_gcm_cap_removed_response_not_framed(self):
        findings = _findings(_mutate_file(
            "server.py", GCM_CAP_CHECK, "    if False:"))
        assert "proto.response-not-framed" in _rules(findings)
        [finding] = [f for f in findings
                     if f.rule == "proto.response-not-framed"]
        assert "tag" in finding.message
        assert finding.location.file.endswith("server.py")

    def test_original_worker_killing_dos_starves(self):
        # Cap gone AND both later hardening nets gone: the model
        # must reach a state where the worker is dead and an
        # outstanding request is never answered.
        def mutate(display, text):
            if display.endswith("server.py"):
                for needle in (GCM_CAP_CHECK, SEND_FALLBACK,
                               WORKER_SHIELD):
                    assert needle in text, needle
                text = text.replace(GCM_CAP_CHECK, "    if False:")
                text = text.replace(
                    SEND_FALLBACK,
                    "\n        except ValueError as exc:")
                text = text.replace(
                    WORKER_SHIELD, "\n            except ValueError:")
            return text
        findings = _findings(mutate)
        assert "proto.desync-deadlock" in _rules(findings)
        starved = [f for f in findings
                   if f.rule == "proto.desync-deadlock"
                   and "starvation" in f.message]
        assert starved, [f.message for f in findings]
        # Acceptance: a state-trace witness rides in the message.
        assert all("[trace:" in f.message for f in starved)

    def test_stop_task_unpinned_lifecycle_unreachable(self):
        findings = _findings(_mutate_file(
            "server.py", STOP_TASK_PIN, STOP_TASK_UNPINNED))
        assert "proto.unreachable-state" in _rules(findings)
        messages = " | ".join(f.message for f in findings)
        assert "stopped" in messages
        assert "weak task references" in messages


class TestSyntheticBugs:
    def test_new_status_member_nobody_dispatches(self):
        findings = _findings(_mutate_file(
            "protocol.py", STATUS_TAIL,
            STATUS_TAIL + "\n    PAUSED = 9"))
        assert _rules(findings) == {"proto.unhandled-status"}
        [finding] = findings
        assert "PAUSED" in finding.message
        assert finding.location.file.endswith("protocol.py")

    def test_decode_payload_raise_with_wrong_recoverable_flag(self):
        findings = _findings(_mutate_file(
            "protocol.py", BAD_MAGIC_RAISE,
            'raise FrameError(f"bad magic (want {MAGIC!r})",\n'
            '                         recoverable=False)'))
        assert _rules(findings) == {
            "proto.unclassified-frame-error"}
        [finding] = findings
        assert "decode_payload" in finding.message
        assert "recoverable=False" in finding.message

    def test_loop_continues_past_desync(self):
        findings = _findings(_mutate_file(
            "server.py", RECOVERABLE_BRANCH,
            "                continue"))
        assert "proto.desync-deadlock" in _rules(findings)
        desync = [f for f in findings
                  if f.rule == "proto.desync-deadlock"]
        # Acceptance: each model violation carries its witness trace.
        assert all("[trace:" in f.message for f in desync)
        assert any("desynchronized" in f.message for f in desync)


class TestWitnessTraces:
    def test_trace_names_the_adversarial_step(self):
        findings = _findings(_mutate_file(
            "server.py", RECOVERABLE_BRANCH,
            "                continue"))
        traces = [f.message for f in findings if "[trace:" in f.message]
        assert traces
        # The witness must mention a concrete peer input class, not
        # just an abstract state id.
        assert any("peer:" in t for t in traces)


class TestCorpusPins:
    """The needles really are in the shipped text (refactor guard)."""

    @pytest.mark.parametrize("filename,needle", [
        ("server.py", GCM_CAP_CHECK),
        ("server.py", SEND_FALLBACK),
        ("server.py", WORKER_SHIELD),
        ("server.py", STOP_TASK_PIN),
        ("server.py", RECOVERABLE_BRANCH),
        ("protocol.py", STATUS_TAIL),
        ("protocol.py", BAD_MAGIC_RAISE),
    ])
    def test_needle_present(self, filename, needle):
        text = (ROOT / "src/repro/serve" / filename).read_text()
        assert needle in text


class TestAnalysisDetail:
    def test_starvation_witness_is_minimal_state(self):
        def mutate(display, text):
            if display.endswith("server.py"):
                text = text.replace(GCM_CAP_CHECK, "    if False:")
                text = text.replace(
                    SEND_FALLBACK,
                    "\n        except ValueError as exc:")
                text = text.replace(
                    WORKER_SHIELD, "\n            except ValueError:")
            return text
        analysis = analyze(_sources(mutate))
        starved = [v for v in analysis.violations
                   if "starvation" in v.message]
        assert starved
        # The witness label renders the product state readably.
        assert "outstanding=" in starved[0].message
