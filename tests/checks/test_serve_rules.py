"""Async-service rules: bounded queues and timeout-wrapped awaits."""

import textwrap

from repro.checks.crypto_lint import SourceFile
from repro.checks.engine import KIND_SOURCE, CheckConfig, run_rules

SERVE_PATH = "src/repro/serve/snippet.py"


def lint(code, rule_id, path=SERVE_PATH, config=None):
    source = SourceFile.parse(path, textwrap.dedent(code))
    return run_rules({KIND_SOURCE: [source]}, config,
                     only=[rule_id])


class TestUnboundedQueue:
    def test_bare_queue_triggers(self):
        findings = lint(
            """
            import asyncio
            queue = asyncio.Queue()
            """, "serve.unbounded-queue")
        assert len(findings) == 1
        assert "maxsize" in findings[0].message

    def test_maxsize_zero_triggers(self):
        findings = lint(
            """
            import asyncio
            queue = asyncio.Queue(maxsize=0)
            """, "serve.unbounded-queue")
        assert len(findings) == 1

    def test_negative_maxsize_triggers(self):
        """asyncio treats every maxsize <= 0 as unbounded, and -1
        parses as a unary minus, not a negative constant."""
        findings = lint(
            """
            import asyncio
            a = asyncio.Queue(maxsize=-1)
            b = asyncio.Queue(-4)
            """, "serve.unbounded-queue")
        assert len(findings) == 2

    def test_priority_and_lifo_variants_covered(self):
        findings = lint(
            """
            import asyncio
            a = asyncio.LifoQueue()
            b = asyncio.PriorityQueue()
            """, "serve.unbounded-queue")
        assert len(findings) == 2

    def test_bounded_queue_is_fine(self):
        findings = lint(
            """
            import asyncio
            queue = asyncio.Queue(maxsize=64)
            """, "serve.unbounded-queue")
        assert findings == []

    def test_positional_bound_is_fine(self):
        findings = lint(
            """
            import asyncio
            def make(depth):
                return asyncio.Queue(depth)
            """, "serve.unbounded-queue")
        assert findings == []

    def test_non_asyncio_queue_ignored(self):
        findings = lint(
            """
            import queue
            q = queue.Queue()
            """, "serve.unbounded-queue")
        assert findings == []

    def test_out_of_scope_file_ignored(self):
        findings = lint(
            """
            import asyncio
            queue = asyncio.Queue()
            """, "serve.unbounded-queue",
            path="src/repro/perf/engine.py")
        assert findings == []

    def test_scope_is_configurable(self):
        config = CheckConfig(serve_path_patterns=("*everything*",))
        findings = lint(
            """
            import asyncio
            queue = asyncio.Queue()
            """, "serve.unbounded-queue",
            path="lib/everything/net.py", config=config)
        assert len(findings) == 1


class TestMissingTimeout:
    def test_bare_readexactly_triggers(self):
        findings = lint(
            """
            async def f(reader):
                return await reader.readexactly(4)
            """, "serve.missing-timeout")
        assert len(findings) == 1
        assert "readexactly" in findings[0].message

    def test_bare_drain_triggers(self):
        findings = lint(
            """
            async def f(writer, data):
                writer.write(data)
                await writer.drain()
            """, "serve.missing-timeout")
        assert len(findings) == 1

    def test_bare_open_connection_triggers(self):
        findings = lint(
            """
            import asyncio
            async def f(host, port):
                return await asyncio.open_connection(host, port)
            """, "serve.missing-timeout")
        assert len(findings) == 1

    def test_wait_for_wrapped_is_fine(self):
        findings = lint(
            """
            import asyncio
            async def f(reader, writer):
                data = await asyncio.wait_for(
                    reader.readexactly(4), 5.0)
                writer.write(data)
                await asyncio.wait_for(writer.drain(), 5.0)
            """, "serve.missing-timeout")
        assert findings == []

    def test_unrelated_awaits_ignored(self):
        findings = lint(
            """
            import asyncio
            async def f(queue):
                item = await queue.get()
                await asyncio.sleep(0.1)
                return item
            """, "serve.missing-timeout")
        assert findings == []

    def test_out_of_scope_file_ignored(self):
        findings = lint(
            """
            async def f(reader):
                return await reader.readexactly(4)
            """, "serve.missing-timeout",
            path="examples/demo.py")
        assert findings == []


class TestRepositoryIsClean:
    def test_serve_sources_pass_their_own_rules(self):
        """The shipped serving layer obeys both disciplines."""
        from pathlib import Path

        import repro.serve as serve_pkg

        sources = []
        for path in Path(serve_pkg.__file__).parent.glob("*.py"):
            rel = f"src/repro/serve/{path.name}"
            sources.append(SourceFile.parse(rel, path.read_text()))
        findings = run_rules(
            {KIND_SOURCE: sources}, None,
            only=["serve.unbounded-queue", "serve.missing-timeout"],
        )
        assert findings == []

    def test_rules_registered_with_error_severity(self):
        from repro.checks.engine import Severity, registry

        rules = registry()
        for rule_id in ("serve.unbounded-queue",
                        "serve.missing-timeout"):
            assert rule_id in rules
            assert rules[rule_id].severity is Severity.ERROR
