"""``taint.*`` rules: one triggering and one clean snippet per sink,
plus the interprocedural scenarios the shallow lint cannot see."""

import textwrap

from repro.checks.crypto_lint import SourceFile
from repro.checks.engine import KIND_FLOW, CheckConfig, run_rules
from repro.checks.flow import FlowSubject


def lint(rule_id, config=None, /, **modules):
    sources = tuple(
        SourceFile.parse(f"{name}.py", textwrap.dedent(code))
        for name, code in modules.items()
    )
    return run_rules({KIND_FLOW: [FlowSubject(sources)]},
                     config, only=[rule_id])


class TestSecretInLog:
    def test_direct_log_of_key_triggers(self):
        findings = lint("taint.secret-in-log", mod="""
            import logging
            LOG = logging.getLogger(__name__)

            def f(key):
                LOG.warning("loaded %s", key)
            """)
        assert len(findings) == 1
        assert "key" in findings[0].message

    def test_session_logged_by_helper_across_files(self):
        # The post-PR-5 near-miss: server code hands a Session to a
        # helper in another module, and the helper logs it.
        findings = lint(
            "taint.secret-in-log",
            helpers="""
            import logging
            LOG = logging.getLogger(__name__)

            def audit(session):
                LOG.info("state %r", session)
            """,
            server="""
            from helpers import audit

            class Session:
                pass

            def handle(key):
                session = Session()
                audit(session)
            """)
        assert len(findings) == 1
        assert findings[0].location.file == "helpers.py"

    def test_logging_public_projection_is_clean(self):
        findings = lint("taint.secret-in-log", mod="""
            import logging
            LOG = logging.getLogger(__name__)

            def f(key, session: Session):
                LOG.info("size=%d sid=%s ok=%s", len(key),
                         session.session_id, key is not None)
            """)
        assert findings == []

    def test_non_logger_receiver_is_clean(self):
        findings = lint("taint.secret-in-log", mod="""
            def f(key, store):
                store.info(key)
            """)
        assert findings == []


class TestSecretInException:
    def test_raise_with_key_triggers(self):
        findings = lint("taint.secret-in-exception", mod="""
            def f(key):
                raise ValueError(f"bad key {key!r}")
            """)
        assert len(findings) == 1

    def test_raise_without_value_is_clean(self):
        findings = lint("taint.secret-in-exception", mod="""
            def f(key):
                raise ValueError("bad key length: %d" % len(key))
            """)
        assert findings == []

    def test_seeded_validator_triggers(self):
        # Mirrors the key_schedule._check_word defect fixed in this
        # change: the validator itself has no secret-looking name,
        # only its call sites prove the argument is key material.
        findings = lint("taint.secret-in-exception", mod="""
            def _check(word):
                if word > 0xFFFFFFFF:
                    raise ValueError(f"out of range: {word}")

            def expand(key):
                _check(key[0])
            """)
        assert len(findings) == 1
        assert "word" in findings[0].message


class TestSecretInFormat:
    def test_fstring_triggers(self):
        findings = lint("taint.secret-in-format", mod="""
            def f(key):
                return f"key={key.hex()}"
            """)
        assert len(findings) == 1

    def test_repr_and_str_trigger(self):
        findings = lint("taint.secret-in-format", mod="""
            def f(key):
                a = repr(key)
                b = str(key)
            """)
        assert len(findings) == 2

    def test_str_format_and_percent_trigger(self):
        findings = lint("taint.secret-in-format", mod="""
            def f(key):
                a = "k={}".format(key)
                b = "k=%s" % (key,)
            """)
        assert len(findings) == 2

    def test_ciphertext_rendering_is_clean(self):
        # Encrypt output is the data plane; rendering it is the
        # system working as intended.
        findings = lint("taint.secret-in-format", mod="""
            def gcm_encrypt(key, data):
                return data

            def f(key, data):
                return f"ct={gcm_encrypt(key, data).hex()}"
            """)
        assert findings == []

    def test_length_interpolation_is_clean(self):
        findings = lint("taint.secret-in-format", mod="""
            def f(key):
                return f"loaded {len(key)} bytes"
            """)
        assert findings == []


class TestSecretInMetric:
    def test_key_as_label_value_triggers(self):
        findings = lint("taint.secret-in-metric", mod="""
            def f(counter, key):
                counter.labels(peer=key).inc()
            """)
        assert len(findings) == 1

    def test_public_label_is_clean(self):
        findings = lint("taint.secret-in-metric", mod="""
            def f(counter, frame, key):
                counter.labels(op=frame.op).inc()
            """)
        assert findings == []


class TestSecretInSpan:
    def test_key_as_span_attribute_triggers(self):
        findings = lint("taint.secret-in-span", mod="""
            def f(key):
                with trace_span("op", material=key):
                    pass
            """)
        assert len(findings) == 1

    def test_span_name_and_public_attrs_are_clean(self):
        findings = lint("taint.secret-in-span", mod="""
            def f(key, frame):
                with trace_span("encrypt", op=frame.op):
                    pass
            """)
        assert findings == []
