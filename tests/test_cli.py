"""Tests for the repro-aes command-line interface."""

import pytest

from repro.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


class TestTables:
    def test_table2(self, capsys):
        code, out = run_cli(capsys, "tables", "2")
        assert code == 0
        assert "2114" in out and "Cyclone" in out

    def test_all_tables(self, capsys):
        code, out = run_cli(capsys, "tables")
        assert code == 0
        assert "wr_data" in out          # table 1
        assert "Throughput" in out       # table 2
        assert "Hammercores" in out      # table 3


class TestFigures:
    @pytest.mark.parametrize("number", range(1, 10))
    def test_each_figure(self, capsys, number):
        code, out = run_cli(capsys, "figure", str(number))
        assert code == 0
        assert len(out) > 40

    def test_bad_figure(self, capsys):
        with pytest.raises(SystemExit):
            main(["figure", "12"])


class TestEncrypt:
    KEY = "000102030405060708090a0b0c0d0e0f"
    PT = "00112233445566778899aabbccddeeff"
    CT = "69c4e0d86a7b0430d8cdb78070b4c55a"

    def test_encrypt(self, capsys):
        code, out = run_cli(capsys, "encrypt", "--key", self.KEY,
                            "--data", self.PT)
        assert code == 0
        assert self.CT in out
        assert "50 cycles" in out

    def test_decrypt(self, capsys):
        code, out = run_cli(capsys, "encrypt", "--key", self.KEY,
                            "--data", self.CT, "--decrypt")
        assert code == 0
        assert self.PT in out

    def test_bad_hex(self):
        with pytest.raises(SystemExit):
            main(["encrypt", "--key", "zz", "--data", self.PT])

    def test_wrong_length(self):
        with pytest.raises(SystemExit):
            main(["encrypt", "--key", "aabb", "--data", self.PT])

    def test_aes256_routes_to_precomputed_core(self, capsys):
        key256 = ("000102030405060708090a0b0c0d0e0f"
                  "101112131415161718191a1b1c1d1e1f")
        code, out = run_cli(capsys, "encrypt", "--key", key256,
                            "--data", self.PT)
        assert code == 0
        # FIPS-197 Appendix C.3 ciphertext at the 70-cycle latency.
        assert "8ea2b7ca516745bfeafc49904b496089" in out
        assert "70 cycles" in out
        assert "AES-256" in out

    def test_aes192_decrypt(self, capsys):
        key192 = ("000102030405060708090a0b0c0d0e0f"
                  "1011121314151617")
        code, out = run_cli(capsys, "encrypt", "--key", key192,
                            "--data",
                            "dda97ca4864cdfe06eaf70a0ec0d7191",
                            "--decrypt")
        assert code == 0
        assert self.PT in out
        assert "60 cycles" in out


class TestFitAndSweep:
    def test_fit(self, capsys):
        code, out = run_cli(capsys, "fit", "--variant", "encrypt",
                            "--device", "Acex1K")
        assert code == 0
        assert "2114" in out

    def test_fit_sync_rom(self, capsys):
        code, out = run_cli(capsys, "fit", "--variant", "encrypt",
                            "--device", "Cyclone", "--sync-rom")
        assert code == 0
        assert "16384" in out

    def test_bad_variant(self):
        with pytest.raises(SystemExit):
            main(["fit", "--variant", "sideways"])

    def test_sweep(self, capsys):
        code, out = run_cli(capsys, "sweep")
        assert code == 0
        assert "mixed-32-128" in out
        assert "knee" in out


class TestCampaigns:
    def test_seu(self, capsys):
        code, out = run_cli(capsys, "seu", "--injections", "6",
                            "--seed", "1")
        assert code == 0
        assert "6 injections" in out

    def test_seu_hardened(self, capsys):
        code, out = run_cli(capsys, "seu", "--injections", "6",
                            "--seed", "1", "--hardened")
        assert code == 0
        assert "injections" in out

    def test_power(self, capsys):
        code, out = run_cli(capsys, "power", "--blocks", "2")
        assert code == 0
        assert "mW" in out


class TestArtifacts:
    def test_hdl_emission(self, capsys, tmp_path):
        code, out = run_cli(capsys, "hdl", "--variant", "encrypt",
                            "--outdir", str(tmp_path))
        assert code == 0
        assert (tmp_path / "rijndael_pkg.vhd").exists()
        assert (tmp_path / "sbox_forward.mif").exists()
        assert "wrote" in out

    def test_vcd_dump(self, capsys, tmp_path):
        out_file = tmp_path / "wave.vcd"
        code, out = run_cli(capsys, "vcd", "--out", str(out_file))
        assert code == 0
        text = out_file.read_text()
        assert "$enddefinitions" in text
        assert "aes_data_ok" in text

    def test_vcd_waveform_spans_the_block_latency(self, capsys,
                                                  tmp_path):
        import re

        from repro.rtl.vcd import parse_vcd_header

        out_file = tmp_path / "wave.vcd"
        code, out = run_cli(capsys, "vcd", "--blocks", "2",
                            "--out", str(out_file))
        assert code == 0
        cycles = int(re.search(r"(\d+) cycles", out).group(1))
        text = out_file.read_text()
        timescale, variables = parse_vcd_header(text)
        assert timescale == "1 ns"
        names = dict(variables)
        assert names["aes_data_ok"] == 1
        assert names["aes_round"] == 4
        # Timestamps run at the 14 ns Acex1K clock; two 50-cycle
        # blocks must be visible inside the dumped window.
        stamps = [int(m) for m in
                  re.findall(r"^#(\d+)$", text, re.MULTILINE)]
        assert stamps == sorted(stamps)
        assert stamps[-1] <= cycles * 14
        assert stamps[-1] - stamps[0] >= 2 * 50 * 14


class TestBench:
    def test_quick_bench_writes_trajectory(self, capsys, tmp_path):
        import json

        out_file = tmp_path / "bench.json"
        code, out = run_cli(capsys, "bench", "--quick",
                            "--backend", "sliced",
                            "--size", "256", "--reps", "1",
                            "--no-cluster",
                            "--out", str(out_file))
        assert code == 0
        assert "software throughput" in out
        assert "wrote" in out
        report = json.loads(out_file.read_text())
        assert report["schema"] == \
            "repro-aes/software-throughput/v6"
        assert report["equivalence"]["mismatches"] == 0
        assert report["equivalence"]["ghash_mismatches"] == 0
        assert report["ghash"]["workloads"]
        assert report["git_rev"]
        assert "repro_engine_blocks_total" in report["obs"]
        backends = {row["backend"] for row in report["workloads"]}
        assert {"baseline", "sliced"} <= backends
        assert report["serve"]["errors"] == 0
        assert report["serve"]["requests_per_s"] > 0

    def test_no_serve_flag_skips_scenario(self, capsys, tmp_path):
        import json

        out_file = tmp_path / "bench.json"
        code, out = run_cli(capsys, "bench", "--quick",
                            "--backend", "sliced",
                            "--size", "256", "--reps", "1",
                            "--no-serve", "--no-ghash",
                            "--no-cluster",
                            "--out", str(out_file))
        assert code == 0
        report = json.loads(out_file.read_text())
        assert report["serve"] is None
        assert report["ghash"] is None
        assert report["cluster"] is None

    def test_unknown_backend_exits(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["bench", "--quick", "--backend", "warp",
                  "--size", "256",
                  "--out", str(tmp_path / "bench.json")])

    def test_unaligned_size_exits(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["bench", "--quick", "--backend", "sliced",
                  "--size", "100",
                  "--out", str(tmp_path / "bench.json")])


class TestStats:
    def test_text_format_shows_invariants(self, capsys):
        code, out = run_cli(capsys, "stats")
        assert code == 0
        assert "per-block latency: [50] cycles (model: 50)" in out
        assert "sub-events per round: [5] (model: 5)" in out

    def test_json_format(self, capsys):
        import json

        code, out = run_cli(capsys, "stats", "--blocks", "3",
                            "--format", "json")
        assert code == 0
        doc = json.loads(out)
        assert doc["run"]["blocks"] == 3
        assert doc["hardware"]["run_cycles"] == 150
        assert doc["expected"]["block_cycles"] == 50

    def test_prom_format(self, capsys):
        code, out = run_cli(capsys, "stats", "--format", "prom")
        assert code == 0
        assert "# TYPE repro_ip_run_cycles_total counter" in out
        assert 'repro_ip_run_cycles_total{variant="encrypt"} 50' in out

    def test_chrome_trace_format(self, capsys):
        import json

        code, out = run_cli(capsys, "stats", "--format",
                            "chrome-trace")
        assert code == 0
        events = json.loads(out)
        assert all("ph" in e for e in events)
        assert "ip.encrypt" in [e["name"] for e in events]

    def test_sync_rom_decrypt(self, capsys):
        import json

        code, out = run_cli(capsys, "stats", "--variant", "decrypt",
                            "--sync-rom", "--format", "json")
        assert code == 0
        doc = json.loads(out)
        assert doc["expected"]["block_cycles"] == 60
        assert doc["run"]["setup_latency"] == 51

    def test_bad_blocks_exits(self):
        with pytest.raises(SystemExit):
            main(["stats", "--blocks", "0"])


class TestTraceFlag:
    def test_trace_file_is_chrome_loadable(self, capsys, tmp_path):
        import json

        out_file = tmp_path / "trace.json"
        code, _ = run_cli(capsys, "--trace", str(out_file),
                          "stats", "--blocks", "2")
        assert code == 0
        events = json.loads(out_file.read_text())
        assert isinstance(events, list) and events
        assert all("ph" in e and "ts" in e for e in events)
        names = [e["name"] for e in events]
        assert "cli.stats" in names
        assert "stats.collect" in names

    def test_trace_disabled_after_command(self, capsys, tmp_path):
        from repro.obs.tracing import active_tracer

        run_cli(capsys, "--trace", str(tmp_path / "t.json"),
                "stats")
        assert active_tracer() is None

    def test_trace_wraps_other_commands(self, capsys, tmp_path):
        import json

        out_file = tmp_path / "trace.json"
        code, _ = run_cli(capsys, "--trace", str(out_file),
                          "fit", "--variant", "encrypt",
                          "--device", "Acex1K")
        assert code == 0
        names = [e["name"]
                 for e in json.loads(out_file.read_text())]
        assert "cli.fit" in names


class TestServeCommands:
    """`repro-aes serve` + `repro-aes loadgen`, end to end.

    The server runs as a subprocess (its own event loop and signal
    handling); the load generator runs in-process so capsys sees its
    report.  The run ends with a SHUTDOWN frame — the same clean
    termination the CI smoke job uses.
    """

    def _start_server(self, tmp_path, *extra):
        import os
        import subprocess
        import sys
        from pathlib import Path

        repo = Path(__file__).resolve().parents[1]
        env = dict(os.environ)
        src = str(repo / "src")
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            src + os.pathsep + existing if existing else src
        )
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve",
             "--port", "0", "--serve-seconds", "60", *extra],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, env=env, cwd=str(tmp_path),
        )
        line = proc.stdout.readline()
        assert "serving on" in line, line
        port = int(line.rsplit(":", 1)[1])
        return proc, port

    def test_serve_loadgen_round_trip(self, capsys, tmp_path):
        import json

        metrics_file = tmp_path / "serve-metrics.json"
        proc, port = self._start_server(
            tmp_path, "--metrics-out", str(metrics_file)
        )
        try:
            code, out = run_cli(
                capsys, "loadgen", "--port", str(port),
                "--clients", "3", "--requests", "4",
                "--mode", "gcm", "--size", "512", "--shutdown",
            )
            assert code == 0
            assert "12 ok, 0 error(s)" in out
            assert "req/s" in out
            rest, _ = proc.communicate(timeout=30)
        finally:
            proc.kill()
        assert proc.returncode == 0
        assert "shut down cleanly" in rest
        metrics = json.loads(metrics_file.read_text())
        requests = metrics["repro_serve_requests_total"]
        served = sum(sample["value"]
                     for sample in requests["samples"])
        # 3 LOAD_KEYs + 12 encrypts + 1 SHUTDOWN.
        assert served >= 16

    def test_loadgen_unreachable_port_exits(self):
        import socket

        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        with pytest.raises(SystemExit,
                           match="no requests succeeded"):
            main(["loadgen", "--port", str(port),
                  "--clients", "1", "--requests", "1"])

    def test_loadgen_dead_listener_exits_nonzero(self):
        # The listener accepts and immediately hangs up: every client
        # connects, then every owed request fails.  The run must not
        # report success.
        import socket
        import threading

        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(4)
        port = listener.getsockname()[1]
        done = threading.Event()

        def slam_the_door():
            listener.settimeout(0.2)
            while not done.is_set():
                try:
                    conn, _ = listener.accept()
                except socket.timeout:
                    continue
                conn.close()

        thread = threading.Thread(target=slam_the_door, daemon=True)
        thread.start()
        try:
            with pytest.raises(SystemExit,
                               match="no requests succeeded"):
                main(["loadgen", "--port", str(port),
                      "--clients", "2", "--requests", "3"])
        finally:
            done.set()
            thread.join(timeout=5)
            listener.close()

    def test_loadgen_error_statuses_exit_nonzero(self, capsys):
        # A peer that answers every second ENCRYPT with INTERNAL:
        # the run completes, some requests fail — exit must be
        # nonzero and the tally must show the failures.
        import itertools
        import threading

        import repro.serve.protocol as proto

        started = threading.Event()
        state = {}
        flaky = itertools.count()

        def serve_errors():
            import asyncio

            async def on_connection(reader, writer):
                try:
                    while True:
                        frame = await proto.read_frame(
                            reader, timeout=10.0)
                        if frame.op is proto.Op.LOAD_KEY:
                            reply = frame.response()
                        elif next(flaky) % 2:
                            reply = frame.error(
                                proto.Status.INTERNAL,
                                "induced failure")
                        else:
                            reply = frame.response(
                                payload=frame.payload)
                        await proto.write_frame(
                            writer, reply, timeout=10.0)
                except (proto.FrameError, ConnectionError,
                        asyncio.IncompleteReadError,
                        asyncio.TimeoutError):
                    pass
                finally:
                    writer.close()

            async def main_loop():
                server = await asyncio.start_server(
                    on_connection, "127.0.0.1", 0)
                state["port"] = server.sockets[0].getsockname()[1]
                state["stop"] = asyncio.Event()
                state["loop"] = asyncio.get_running_loop()
                started.set()
                await state["stop"].wait()
                server.close()
                await server.wait_closed()

            asyncio.run(main_loop())

        thread = threading.Thread(target=serve_errors, daemon=True)
        thread.start()
        assert started.wait(timeout=10)
        try:
            code, out = run_cli(
                capsys, "loadgen", "--port", str(state["port"]),
                "--clients", "2", "--requests", "3",
            )
        finally:
            state["loop"].call_soon_threadsafe(state["stop"].set)
            thread.join(timeout=10)
        assert code == 1
        assert "3 ok, 3 error(s)" in out
        assert "internal" in out


class TestClusterCommand:
    """`repro-aes cluster` + `repro-aes loadgen --sessions`: the
    multi-process topology end to end, as operators run it.  The
    cluster is a subprocess (its own event loop, signal handling and
    spawned workers); the session loadgen runs in-process and ends
    the run with a SHUTDOWN frame through the gateway."""

    def test_cluster_loadgen_round_trip(self, capsys, tmp_path):
        import json
        import os
        import subprocess
        import sys
        from pathlib import Path

        repo = Path(__file__).resolve().parents[1]
        env = dict(os.environ)
        src = str(repo / "src")
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            src + os.pathsep + existing if existing else src
        )
        metrics_file = tmp_path / "cluster-metrics.json"
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "cluster",
             "--workers", "2", "--gateway-port", "0",
             "--serve-seconds", "120",
             "--metrics-out", str(metrics_file)],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, env=env, cwd=str(tmp_path),
        )
        try:
            line = proc.stdout.readline()
            assert "gateway on" in line, line
            port = int(line.rsplit(":", 1)[1])
            workers = [proc.stdout.readline() for _ in range(2)]
            assert all(w.startswith("worker ") for w in workers), \
                workers
            code, out = run_cli(
                capsys, "loadgen", "--port", str(port),
                "--sessions", "4", "--requests", "3",
                "--mode", "gcm", "--size", "512", "--shutdown",
            )
            assert code == 0
            assert "12 ok, 0 error(s)" in out
            rest, _ = proc.communicate(timeout=60)
        finally:
            proc.kill()
        assert proc.returncode == 0
        assert "cluster shut down cleanly" in rest
        metrics = json.loads(metrics_file.read_text())
        routed = metrics["repro_gateway_requests_total"]
        forwarded = sum(
            sample["value"] for sample in routed["samples"]
            if sample["labels"].get("outcome") == "forwarded"
        )
        # 4 LOAD_KEYs + 12 encrypts forwarded; the SHUTDOWN frame is
        # answered at the gateway itself, not forwarded.
        assert forwarded >= 16
