"""Exhaustive single-byte mutation of the frame prefix + header.

Property (proved by enumeration, not sampling): for a well-formed
frame, flipping any single byte of the 4-byte length prefix or the
18-byte header to any of its 255 other values either

- still decodes — necessarily to a *different* frame (the mutation
  landed in an enum/id field whose new value is also valid), or
- raises :class:`FrameError` with a *deterministic* ``recoverable``
  flag: every prefix mutation desynchronizes the stream
  (``recoverable=False``); every header mutation is confined to one
  well-delimited frame (``recoverable=True``).

22 positions x 255 values = 5610 decodes per payload; the payload
content is seeded so failures replay exactly.
"""

import random

import pytest

from repro.serve.protocol import (
    HEADER_BYTES,
    Frame,
    FrameError,
    Mode,
    Op,
    Status,
    decode_frame,
    decode_payload,
    encode_frame,
    encode_frame_views,
)

PREFIX_BYTES = 4
MUTABLE = PREFIX_BYTES + HEADER_BYTES  # 22

_RNG = random.Random(0xA5E5)


def _reference_frame(payload_bytes: int) -> Frame:
    return Frame(
        op=Op.ENCRYPT, mode=Mode.GCM, status=Status.OK,
        session_id=_RNG.randrange(1 << 32),
        request_id=_RNG.randrange(1 << 64),
        payload=_RNG.randbytes(payload_bytes),
    )


@pytest.mark.parametrize("payload_bytes", [0, 1, 64])
def test_every_single_byte_mutation_is_classified(payload_bytes):
    frame = _reference_frame(payload_bytes)
    wire = encode_frame(frame)
    assert decode_frame(wire) == frame  # the unmutated baseline

    for position in range(MUTABLE):
        for flip in range(1, 256):
            mutated = bytearray(wire)
            mutated[position] = (mutated[position] + flip) % 256
            mutated_bytes = bytes(mutated)
            where = f"byte {position} -> +{flip}"
            try:
                decoded = decode_frame(mutated_bytes)
            except FrameError as exc:
                expected = position >= PREFIX_BYTES
                assert exc.recoverable == expected, (
                    f"{where}: recoverable={exc.recoverable}, "
                    f"expected {expected}: {exc}")
            else:
                # A decodable mutation can only live in the header's
                # value-carrying fields; the prefix always desyncs.
                assert position >= PREFIX_BYTES, (
                    f"{where}: prefix mutation decoded")
                assert decoded != frame, (
                    f"{where}: mutation decoded to the same frame")


@pytest.mark.parametrize("payload_bytes", [0, 1, 64])
def test_every_header_mutation_agrees_with_decode_payload(
        payload_bytes):
    """The zero-copy entry point classifies exactly like decode_frame.

    For every single-byte mutation of the 18-byte header,
    ``decode_payload(header, payload)`` must either decode to a
    different frame or raise ``FrameError`` with ``recoverable=True``
    — and its outcome must agree with ``decode_frame`` on the
    reassembled wire image.
    """
    frame = _reference_frame(payload_bytes)
    head, payload = encode_frame_views(frame)
    header = head[PREFIX_BYTES:]
    assert decode_payload(header, payload) == frame

    for position in range(HEADER_BYTES):
        for flip in range(1, 256):
            mutated = bytearray(header)
            mutated[position] = (mutated[position] + flip) % 256
            mutated_header = bytes(mutated)
            where = f"header byte {position} -> +{flip}"

            try:
                reference = decode_frame(
                    head[:PREFIX_BYTES] + mutated_header + payload)
                ref_outcome = ("ok", reference)
            except FrameError as exc:
                ref_outcome = ("err", exc.recoverable)

            try:
                decoded = decode_payload(mutated_header, payload)
            except FrameError as exc:
                assert exc.recoverable is True, (
                    f"{where}: header mutation must stay "
                    f"recoverable: {exc}")
                assert ref_outcome == ("err", True), (
                    f"{where}: decode_payload raised but "
                    f"decode_frame gave {ref_outcome}")
            else:
                assert decoded != frame, (
                    f"{where}: mutation decoded to the same frame")
                assert ref_outcome == ("ok", decoded), (
                    f"{where}: decode_payload and decode_frame "
                    f"disagree")


def test_mutation_outcome_is_deterministic():
    """The same mutation always classifies the same way."""
    frame = _reference_frame(8)
    wire = encode_frame(frame)
    for position in range(MUTABLE):
        mutated = bytes(
            b ^ (0x5A if i == position else 0)
            for i, b in enumerate(wire))
        outcomes = set()
        for _ in range(3):
            try:
                decode_frame(mutated)
                outcomes.add(("ok", None))
            except FrameError as exc:
                outcomes.add(("err", exc.recoverable))
        assert len(outcomes) == 1, (position, outcomes)
