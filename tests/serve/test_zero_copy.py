"""Zero-copy codec regressions: the copy tax must not come back.

Three properties, each of which held false before the split codec:

- ``encode_frame_views`` passes an immutable payload through as the
  *same object* — no defensive ``bytes()`` copy, no concatenation.
- The send path (``write_frame``) writes head and payload as two
  parts; the payload buffer on the transport *is* the frame's.
- The streaming read path adopts ``readexactly``'s buffer into the
  decoded frame without a reassembly slice, and parses the length
  prefix exactly once (``decode_payload``).

The allocation-count test pins the whole send path with tracemalloc:
encoding a frame must not allocate anything proportional to the
payload.
"""

import asyncio
import tracemalloc

import pytest

from repro.serve.protocol import (
    HEADER_BYTES,
    Frame,
    FrameError,
    Mode,
    Op,
    Status,
    decode_frame,
    decode_payload,
    encode_frame,
    encode_frame_views,
    read_frame,
    write_frame,
)


def _frame(payload: bytes) -> Frame:
    return Frame(op=Op.ENCRYPT, mode=Mode.GCM, status=Status.OK,
                 session_id=7, request_id=99, payload=payload)


class _CollectingWriter:
    """StreamWriter stand-in recording every buffer written."""

    def __init__(self):
        self.buffers = []

    def write(self, data):
        self.buffers.append(data)

    async def drain(self):
        pass


class TestEncodeViews:
    def test_payload_passes_through_unc_copied(self):
        payload = bytes(range(256)) * 64
        head, out = encode_frame_views(_frame(payload))
        assert out is payload, "payload was copied on encode"

    def test_head_is_prefix_plus_header(self):
        frame = _frame(b"abc")
        head, payload = encode_frame_views(frame)
        assert len(head) == 4 + HEADER_BYTES
        assert head + payload == encode_frame(frame)

    def test_views_roundtrip_through_decode(self):
        frame = _frame(b"payload-bytes")
        head, payload = encode_frame_views(frame)
        assert decode_frame(head + payload) == frame

    def test_mutable_payload_still_copied(self):
        # The defensive copy survives for the one case that needs
        # it: a caller handing in a mutable buffer.
        payload = bytearray(b"mutable")
        head, out = encode_frame_views(
            _frame(payload))  # type: ignore[arg-type]
        assert isinstance(out, bytes)
        payload[0] = 0
        assert out == b"mutable"

    def test_oversized_payload_rejected(self):
        from repro.serve.protocol import MAX_PAYLOAD_BYTES
        with pytest.raises(FrameError):
            encode_frame_views(_frame(bytes(MAX_PAYLOAD_BYTES + 1)))

    def test_no_payload_sized_allocation_on_encode(self):
        """Allocation-count regression: encoding must cost O(head),
        not O(payload)."""
        payload = bytes(512 * 1024)
        frame = _frame(payload)
        encode_frame_views(frame)  # warm anything lazy
        tracemalloc.start()
        try:
            before, _ = tracemalloc.get_traced_memory()
            for _ in range(8):
                encode_frame_views(frame)
            after, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        # 8 encodes of a 512 KiB payload would have copied 4 MiB;
        # heads plus bookkeeping stay well under 64 KiB.
        assert peak - before < 64 * 1024


class TestSendPath:
    def test_write_frame_writes_payload_object(self):
        payload = b"x" * 4096
        frame = _frame(payload)
        writer = _CollectingWriter()
        asyncio.run(write_frame(writer, frame, timeout=1.0))
        assert len(writer.buffers) == 2
        assert writer.buffers[1] is payload, \
            "send path copied the payload"
        assert b"".join(writer.buffers) == encode_frame(frame)

    def test_write_frame_skips_empty_payload(self):
        frame = _frame(b"")
        writer = _CollectingWriter()
        asyncio.run(write_frame(writer, frame, timeout=1.0))
        assert len(writer.buffers) == 1
        assert writer.buffers[0] == encode_frame(frame)


class TestReadPath:
    @staticmethod
    def _read(wire: bytes):
        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data(wire)
            reader.feed_eof()
            return await read_frame(reader, timeout=1.0)
        return asyncio.run(scenario())

    def test_roundtrip(self):
        frame = _frame(b"p" * 1000)
        assert self._read(encode_frame(frame)) == frame

    def test_decode_payload_parses_length_exactly_once(self):
        frame = _frame(b"abcdef")
        wire = encode_frame(frame)
        header, payload = wire[4:4 + HEADER_BYTES], \
            wire[4 + HEADER_BYTES:]
        decoded = decode_payload(header, payload)
        assert decoded == frame
        assert decoded.payload is payload, \
            "decode_payload copied the payload buffer"

    def test_decode_payload_rejects_bad_header_split(self):
        with pytest.raises(FrameError) as info:
            decode_payload(b"short", b"")
        assert info.value.recoverable

    def test_undersized_body_still_recoverable(self):
        # body_len < HEADER_BYTES goes through decode_body and must
        # classify exactly as before the split reader.
        wire = (5).to_bytes(4, "big") + b"RJxyz"
        with pytest.raises(FrameError) as info:
            self._read(wire)
        assert info.value.recoverable
        assert "shorter" in str(info.value)
