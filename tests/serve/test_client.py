"""Client-side behaviour: backoff policy, retries, load generator."""

import asyncio
import random

import pytest

from repro.serve.client import (
    CryptoClient,
    LoadReport,
    RequestFailed,
    RetryPolicy,
    run_load,
)
from repro.serve.protocol import Frame, Mode, Op, Status
from repro.serve.server import CryptoServer, ServeConfig


class TestRetryPolicy:
    def test_delay_grows_then_caps(self):
        policy = RetryPolicy(base_delay=0.1, max_delay=0.5,
                             jitter=0.0)
        rng = random.Random(1)
        delays = [policy.delay(n, rng) for n in range(6)]
        assert delays[0] == pytest.approx(0.1)
        assert delays[1] == pytest.approx(0.2)
        assert delays[2] == pytest.approx(0.4)
        # Everything after hits the cap.
        assert delays[3:] == [pytest.approx(0.5)] * 3

    def test_jitter_spreads_and_is_deterministic_per_seed(self):
        policy = RetryPolicy(base_delay=1.0, max_delay=1.0,
                             jitter=0.5)
        sample = [policy.delay(0, random.Random(7))
                  for _ in range(5)]
        # Same seed, same jitter: fully deterministic...
        assert len(set(sample)) == 1
        # ...and inside the (1 - jitter, 1] band.
        assert 0.5 < sample[0] <= 1.0
        spread = {round(policy.delay(0, random.Random(seed)), 6)
                  for seed in range(10)}
        assert len(spread) > 1

    def test_retryable_status_retries_then_returns_last(self):
        """A server that always answers OVERLOADED: the client
        retries `attempts` times, then hands back the error frame."""

        calls = []

        async def scenario():
            server = CryptoServer(ServeConfig(port=0))

            async def overloaded(session, frame):
                calls.append(frame.request_id)
                return frame.error(Status.OVERLOADED, "full")

            server._handlers[Op.PING] = overloaded
            await server.start()
            host, port = server.address
            policy = RetryPolicy(attempts=3, base_delay=0.001,
                                 max_delay=0.002)
            async with CryptoClient(host, port,
                                    retry=policy) as client:
                reply = await client.ping(b"x")
            await server.stop()
            return reply

        reply = asyncio.run(scenario())
        assert reply.status is Status.OVERLOADED
        assert len(calls) == 3

    def test_transport_exhaustion_raises_request_failed(self):
        async def scenario():
            # Bind-then-close gives a port with nothing listening.
            probe = await asyncio.start_server(
                lambda r, w: None, "127.0.0.1", 0
            )
            port = probe.sockets[0].getsockname()[1]
            probe.close()
            await probe.wait_closed()
            policy = RetryPolicy(attempts=2, base_delay=0.001,
                                 max_delay=0.002)
            client = CryptoClient("127.0.0.1", port, retry=policy,
                                  connect_timeout=1.0)
            with pytest.raises(RequestFailed):
                await client.request(Op.PING)
            await client.close()

        asyncio.run(scenario())

    def test_reconnects_after_server_drops_connection(self):
        """A mid-stream disconnect is retried on a fresh connection;
        the request ultimately succeeds."""

        dropped = []

        async def scenario():
            server = CryptoServer(ServeConfig(port=0))
            await server.start()
            host, port = server.address
            original = server._op_ping

            async def flaky(session, frame):
                if not dropped:
                    dropped.append(True)
                    # Killing the transport before the reply leaves
                    # forces the client onto a fresh connection.
                    for writer in list(server._writers):
                        writer.close()
                    return frame.error(Status.INTERNAL, "dropped")
                return await original(session, frame)

            server._handlers[Op.PING] = flaky
            policy = RetryPolicy(attempts=4, base_delay=0.001,
                                 max_delay=0.01)
            async with CryptoClient(host, port,
                                    retry=policy) as client:
                reply = await client.ping(b"echo")
            await server.stop()
            return reply

        reply = asyncio.run(scenario())
        assert reply.status is Status.OK
        assert reply.payload == b"echo"
        assert dropped == [True]


class TestRunLoad:
    def test_closed_loop_counts_and_rates(self):
        async def scenario():
            server = CryptoServer(ServeConfig(port=0))
            await server.start()
            host, port = server.address
            report = await run_load(host, port, bytes(16),
                                    clients=3, requests=4,
                                    mode=Mode.CTR,
                                    payload_bytes=512)
            await server.stop()
            return report

        report = asyncio.run(scenario())
        assert isinstance(report, LoadReport)
        assert report.clients == 3
        assert report.requests == 12
        assert report.errors == 0
        assert report.requests_per_s > 0
        assert report.statuses == {"ok": 12}
        text = report.render()
        assert "3 client(s)" in text and "req/s" in text

    def test_shutdown_flag_stops_server(self):
        async def scenario():
            server = CryptoServer(ServeConfig(port=0))
            await server.start()
            host, port = server.address
            await run_load(host, port, bytes(16), clients=1,
                           requests=1, shutdown=True)
            await asyncio.wait_for(server.wait_stopped(), 10.0)

        asyncio.run(scenario())

    def test_rejects_nonsense_parameters(self):
        async def scenario():
            with pytest.raises(ValueError):
                await run_load("127.0.0.1", 1, bytes(16), clients=0)
            with pytest.raises(ValueError):
                await run_load("127.0.0.1", 1, bytes(16),
                               mode=Mode.RAW)

        asyncio.run(scenario())

    def test_ecb_payload_below_one_block_rejected(self):
        """A sub-block ECB payload cannot be 16-aligned; it must be
        rejected up front instead of every request failing
        BAD_REQUEST on the wire."""

        async def scenario():
            with pytest.raises(ValueError, match="payload_bytes"):
                await run_load("127.0.0.1", 1, bytes(16),
                               mode=Mode.ECB, payload_bytes=8)

        asyncio.run(scenario())

    def test_gcm_and_ecb_loads_succeed(self):
        async def scenario():
            server = CryptoServer(ServeConfig(port=0))
            await server.start()
            host, port = server.address
            results = []
            for mode in (Mode.ECB, Mode.GCM):
                results.append(
                    await run_load(host, port, bytes(16), clients=2,
                                   requests=2, mode=mode,
                                   payload_bytes=256)
                )
            await server.stop()
            return results

        for report in asyncio.run(scenario()):
            assert report.errors == 0
            assert report.requests == 4


class TestRequestIdCheck:
    def test_mismatched_response_id_is_rejected(self):
        """A server answering with the wrong request id trips the
        client's mismatch guard rather than mis-attributing data."""

        async def scenario():
            server = CryptoServer(ServeConfig(port=0))

            async def wrong_id(session, frame):
                return Frame(op=frame.op, status=Status.OK,
                             request_id=frame.request_id + 999,
                             payload=b"not-yours")

            server._handlers[Op.PING] = wrong_id
            await server.start()
            host, port = server.address
            policy = RetryPolicy(attempts=2, base_delay=0.001,
                                 max_delay=0.002)
            client = CryptoClient(host, port, retry=policy)
            with pytest.raises(RequestFailed):
                await client.ping(b"x")
            await client.close()
            await server.stop()

        asyncio.run(scenario())
