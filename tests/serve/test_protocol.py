"""Frame codec tests: round-trips and hostile-input rejection."""

import asyncio

import pytest

from repro.serve.protocol import (
    HEADER_BYTES,
    MAGIC,
    MAX_FRAME_BYTES,
    MAX_PAYLOAD_BYTES,
    TRACE_EXT_BYTES,
    TRACE_VERSION,
    VERSION,
    Frame,
    FrameError,
    Mode,
    Op,
    Status,
    decode_body,
    decode_frame,
    encode_frame,
    read_frame,
    write_frame,
)


class TestRoundTrip:
    def test_every_field_survives(self):
        frame = Frame(op=Op.ENCRYPT, mode=Mode.GCM,
                      status=Status.AUTH_FAILED,
                      session_id=0xDEADBEEF,
                      request_id=0x0123456789ABCDEF,
                      payload=b"\x00\xffpayload")
        assert decode_frame(encode_frame(frame)) == frame

    @pytest.mark.parametrize("op", list(Op))
    @pytest.mark.parametrize("mode", list(Mode))
    def test_all_op_mode_combinations(self, op, mode):
        frame = Frame(op=op, mode=mode, payload=b"x" * 37)
        assert decode_frame(encode_frame(frame)) == frame

    @pytest.mark.parametrize("status", list(Status))
    def test_all_statuses(self, status):
        frame = Frame(op=Op.PING, status=status)
        assert decode_frame(encode_frame(frame)).status is status

    def test_empty_payload(self):
        frame = Frame(op=Op.SHUTDOWN)
        wire = encode_frame(frame)
        assert len(wire) == 4 + HEADER_BYTES
        assert decode_frame(wire) == frame

    def test_max_payload_round_trips(self):
        frame = Frame(op=Op.PING, payload=b"a" * MAX_PAYLOAD_BYTES)
        assert decode_frame(encode_frame(frame)) == frame

    def test_length_prefix_counts_body(self):
        wire = encode_frame(Frame(op=Op.PING, payload=b"abc"))
        assert int.from_bytes(wire[:4], "big") == len(wire) - 4

    def test_frame_repr_hides_payload(self):
        frame = Frame(op=Op.LOAD_KEY, payload=b"\x13" * 16)
        assert "13" * 8 not in repr(frame)

    def test_trace_context_survives_the_wire(self):
        frame = Frame(op=Op.ENCRYPT, mode=Mode.CTR, request_id=7,
                      payload=b"data", trace_id=0x1122334455667788,
                      parent_span_id=0x99AABBCCDDEEFF00)
        wire = encode_frame(frame)
        # Trace context widens the head by TRACE_EXT_BYTES and bumps
        # the version byte to TRACE_VERSION.
        assert len(wire) == 4 + HEADER_BYTES + TRACE_EXT_BYTES + 4
        assert wire[6] == TRACE_VERSION
        assert decode_frame(wire) == frame

    def test_untraced_frame_stays_version_1(self):
        wire = encode_frame(Frame(op=Op.PING, payload=b"x"))
        assert wire[6] == VERSION
        assert len(wire) == 4 + HEADER_BYTES + 1

    def test_traced_max_payload_round_trips(self):
        frame = Frame(op=Op.PING, payload=b"a" * MAX_PAYLOAD_BYTES,
                      trace_id=1)
        assert decode_frame(encode_frame(frame)) == frame

    def test_response_echoes_identity(self):
        request = Frame(op=Op.ENCRYPT, mode=Mode.CTR, session_id=7,
                        request_id=42, payload=b"data")
        reply = request.response(payload=b"out")
        assert (reply.op, reply.mode) == (request.op, request.mode)
        assert reply.request_id == request.request_id
        assert reply.session_id == request.session_id
        assert reply.status is Status.OK
        error = request.error(Status.NO_KEY, "no key")
        assert error.status is Status.NO_KEY
        assert error.payload == b"no key"


class TestRejection:
    def test_oversized_payload_refused_on_encode(self):
        frame = Frame(op=Op.PING,
                      payload=b"a" * (MAX_PAYLOAD_BYTES + 1))
        with pytest.raises(FrameError):
            encode_frame(frame)

    def test_truncated_frame_unrecoverable(self):
        wire = encode_frame(Frame(op=Op.PING, payload=b"abcdef"))
        with pytest.raises(FrameError) as exc_info:
            decode_frame(wire[:-3])
        assert not exc_info.value.recoverable

    def test_short_prefix_unrecoverable(self):
        with pytest.raises(FrameError) as exc_info:
            decode_frame(b"\x00\x01")
        assert not exc_info.value.recoverable

    def test_oversized_length_prefix_unrecoverable(self):
        wire = (MAX_FRAME_BYTES + 1).to_bytes(4, "big") + b"junk"
        with pytest.raises(FrameError) as exc_info:
            decode_frame(wire)
        assert not exc_info.value.recoverable

    def test_bad_magic_recoverable(self):
        wire = bytearray(encode_frame(Frame(op=Op.PING)))
        wire[4:6] = b"XX"
        with pytest.raises(FrameError) as exc_info:
            decode_frame(bytes(wire))
        assert exc_info.value.recoverable

    def test_version_mismatch_recoverable(self):
        wire = bytearray(encode_frame(Frame(op=Op.PING)))
        assert wire[6] == VERSION
        wire[6] = TRACE_VERSION + 1  # no such version
        with pytest.raises(FrameError) as exc_info:
            decode_frame(bytes(wire))
        assert exc_info.value.recoverable
        assert "version" in str(exc_info.value)

    def test_traced_frame_too_short_for_context_recoverable(self):
        # A version-2 frame whose body cannot hold the 16-byte trace
        # context: well-delimited, so the stream stays aligned.
        wire = bytearray(encode_frame(Frame(op=Op.PING,
                                            payload=b"short")))
        wire[6] = TRACE_VERSION
        with pytest.raises(FrameError) as exc_info:
            decode_frame(bytes(wire))
        assert exc_info.value.recoverable
        assert "trace context" in str(exc_info.value)

    def test_unknown_op_recoverable(self):
        wire = bytearray(encode_frame(Frame(op=Op.PING)))
        wire[7] = 250  # no such Op
        with pytest.raises(FrameError) as exc_info:
            decode_frame(bytes(wire))
        assert exc_info.value.recoverable

    def test_garbage_body_rejected(self):
        body = b"\xde\xad\xbe\xef" * 8
        with pytest.raises(FrameError):
            decode_body(body)

    def test_short_body_rejected(self):
        with pytest.raises(FrameError):
            decode_body(MAGIC + bytes([VERSION]))


class _OneShotStream:
    """Minimal writer stub capturing bytes for read-back."""

    def __init__(self):
        self.buffer = bytearray()

    def write(self, data):
        self.buffer.extend(data)

    async def drain(self):
        pass


class TestStreamIO:
    def _reader_for(self, data: bytes) -> asyncio.StreamReader:
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        return reader

    def test_write_then_read_round_trips(self):
        async def scenario():
            writer = _OneShotStream()
            frame = Frame(op=Op.ENCRYPT, mode=Mode.CTR,
                          request_id=9, payload=b"nonce+data")
            await write_frame(writer, frame, timeout=1.0)
            reader = self._reader_for(bytes(writer.buffer))
            assert await read_frame(reader, timeout=1.0) == frame
            # Clean EOF on the boundary reads as None.
            assert await read_frame(reader, timeout=1.0) is None

        asyncio.run(scenario())

    def test_traced_write_then_read_round_trips(self):
        async def scenario():
            writer = _OneShotStream()
            frame = Frame(op=Op.PING, request_id=3, payload=b"hello",
                          trace_id=0xABCD, parent_span_id=0x1234)
            await write_frame(writer, frame, timeout=1.0)
            reader = self._reader_for(bytes(writer.buffer))
            decoded = await read_frame(reader, timeout=1.0)
            assert decoded == frame
            assert decoded.trace_id == 0xABCD
            assert decoded.parent_span_id == 0x1234

        asyncio.run(scenario())

    def test_eof_mid_frame_unrecoverable(self):
        async def scenario():
            wire = encode_frame(Frame(op=Op.PING, payload=b"abcdef"))
            reader = self._reader_for(wire[:-2])
            with pytest.raises(FrameError) as exc_info:
                await read_frame(reader, timeout=1.0)
            assert not exc_info.value.recoverable

        asyncio.run(scenario())

    def test_eof_mid_prefix_unrecoverable(self):
        async def scenario():
            reader = self._reader_for(b"\x00")
            with pytest.raises(FrameError) as exc_info:
                await read_frame(reader, timeout=1.0)
            assert not exc_info.value.recoverable

        asyncio.run(scenario())

    def test_oversized_prefix_rejected_before_buffering(self):
        async def scenario():
            reader = self._reader_for(
                (1 << 31).to_bytes(4, "big") + b"x"
            )
            with pytest.raises(FrameError) as exc_info:
                await read_frame(reader, timeout=1.0)
            assert not exc_info.value.recoverable
            assert "limit" in str(exc_info.value)

        asyncio.run(scenario())
