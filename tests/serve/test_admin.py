"""Admin/scrape plane and cross-process observability tests.

Covers the admin HTTP endpoints (including drain-aware readiness),
wire trace propagation (client and server spans sharing a trace id),
and the version negotiation that keeps a v2 client talking to a v1
server.
"""

import asyncio
import json

import pytest

from repro.obs.tracing import disable_tracing, enable_tracing
from repro.serve.client import CryptoClient, RetryPolicy
from repro.serve.protocol import (
    HEADER_BYTES,
    VERSION,
    Frame,
    Mode,
    Op,
    Status,
    decode_body,
    encode_frame,
)
from repro.serve.server import CryptoServer, ServeConfig


async def _http(host, port, path, method="GET"):
    """One raw HTTP exchange; returns (status_code, body_text)."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(
            f"{method} {path} HTTP/1.1\r\nHost: t\r\n\r\n".encode()
        )
        await writer.drain()
        raw = await asyncio.wait_for(reader.read(-1), 5.0)
    finally:
        writer.close()
        try:
            await asyncio.wait_for(writer.wait_closed(), 5.0)
        except (asyncio.TimeoutError, ConnectionError):
            pass
    head, _, body = raw.partition(b"\r\n\r\n")
    return int(head.split()[1]), body.decode()


async def _admin_server():
    server = CryptoServer(ServeConfig(port=0, admin_port=0))
    await server.start()
    return server


class TestAdminEndpoints:
    def test_healthz_and_readyz_while_serving(self):
        async def scenario():
            server = await _admin_server()
            try:
                host, port = server.admin_address
                assert await _http(host, port, "/healthz") == \
                    (200, "ok\n")
                assert await _http(host, port, "/readyz") == \
                    (200, "ready\n")
            finally:
                await server.stop()

        asyncio.run(scenario())

    def test_readyz_is_drain_aware(self):
        async def scenario():
            server = await _admin_server()
            host, port = server.admin_address
            try:
                # Flip the drain flag the way stop() does, before the
                # admin listener goes away with the server.
                server._stopping = True
                status, body = await _http(host, port, "/readyz")
                assert status == 503
                assert "draining" in body
                # Liveness is unaffected by draining.
                status, _ = await _http(host, port, "/healthz")
                assert status == 200
            finally:
                server._stopping = False
                await server.stop()

        asyncio.run(scenario())

    def test_metrics_scrape_has_windowed_quantiles(self):
        async def scenario():
            server = await _admin_server()
            try:
                host, port = server.address
                async with CryptoClient(host, port) as client:
                    await client.load_key(bytes(16))
                    for _ in range(5):
                        reply = await client.encrypt(
                            Mode.CTR, b"\0" * 8 + b"payload")
                        assert reply.status is Status.OK
                ahost, aport = server.admin_address
                status, body = await _http(ahost, aport, "/metrics")
                assert status == 200
                assert ('repro_serve_request_window_seconds'
                        '{op="encrypt",mode="ctr",quantile="0.5"}'
                        in body)
                assert 'quantile="0.95"' in body
                assert 'quantile="0.99"' in body
                assert "repro_serve_queue_wait_window_seconds_count" \
                    in body
                # The ordinary registry families ride along.
                assert "repro_serve_requests_total" in body
            finally:
                await server.stop()

        asyncio.run(scenario())

    def test_quantiles_json(self):
        async def scenario():
            server = await _admin_server()
            try:
                host, port = server.address
                async with CryptoClient(host, port) as client:
                    await client.load_key(bytes(16))
                    await client.ping(b"x")
                ahost, aport = server.admin_address
                status, body = await _http(ahost, aport,
                                           "/quantiles")
                assert status == 200
                doc = json.loads(body)
                assert set(doc) == {"request_seconds",
                                    "queue_wait_seconds"}
                samples = doc["request_seconds"]["samples"]
                by_labels = {
                    (s["labels"]["op"], s["labels"]["mode"]): s
                    for s in samples
                }
                ping = by_labels[("ping", "raw")]
                assert ping["count"] == 1
                assert ping["p50_s"] > 0
                assert ping["max_s"] >= ping["p99_s"]
            finally:
                await server.stop()

        asyncio.run(scenario())

    def test_unknown_path_404_and_get_only(self):
        async def scenario():
            server = await _admin_server()
            try:
                host, port = server.admin_address
                status, _ = await _http(host, port, "/nope")
                assert status == 404
                status, body = await _http(host, port, "/metrics",
                                           method="POST")
                assert status == 405
                assert "GET-only" in body
            finally:
                await server.stop()

        asyncio.run(scenario())

    def test_trace_endpoint_reports_disabled(self):
        async def scenario():
            server = await _admin_server()
            try:
                host, port = server.admin_address
                status, body = await _http(host, port, "/trace")
                assert status == 200
                assert json.loads(body) == {"enabled": False,
                                            "events": []}
            finally:
                await server.stop()

        asyncio.run(scenario())

    def test_admin_plane_off_by_default(self):
        async def scenario():
            server = CryptoServer(ServeConfig(port=0))
            await server.start()
            try:
                with pytest.raises(RuntimeError):
                    server.admin_address
            finally:
                await server.stop()

        asyncio.run(scenario())


class TestTracePropagation:
    def test_client_and_server_spans_share_a_trace_id(self):
        tracer = enable_tracing()
        tracer.clear()
        try:
            async def scenario():
                server = CryptoServer(ServeConfig(port=0))
                await server.start()
                try:
                    host, port = server.address
                    async with CryptoClient(host, port) as client:
                        await client.load_key(bytes(16))
                        reply = await client.encrypt(
                            Mode.CTR, b"\0" * 8 + b"data")
                        assert reply.status is Status.OK
                finally:
                    await server.stop()

            asyncio.run(scenario())
        finally:
            disable_tracing()
        events = tracer.events()
        client_spans = [e for e in events
                        if e["name"] == "request"
                        and e.get("cat") == "client"]
        server_spans = [e for e in events
                        if e["name"] == "serve.request"]
        assert client_spans and server_spans
        client_ids = {e["args"]["trace_id"] for e in client_spans}
        server_ids = {e["args"]["trace_id"] for e in server_spans
                      if "trace_id" in e.get("args", {})}
        shared = client_ids & server_ids
        assert shared, (client_ids, server_ids)
        # The queue-wait and write sub-spans carry the ids too.
        sub = [e for e in events
               if e["name"] in ("serve.queue_wait", "serve.write")
               and e.get("args", {}).get("trace_id") in shared]
        assert sub

    def test_untraced_when_tracing_disabled(self):
        async def scenario():
            server = CryptoServer(ServeConfig(port=0))
            await server.start()
            try:
                host, port = server.address
                async with CryptoClient(host, port) as client:
                    await client.load_key(bytes(16))
                    reply = await client.ping(b"probe")
                    assert reply.status is Status.OK
                    # No tracer -> the wire stays version 1.
                    assert reply.trace_id == 0
            finally:
                await server.stop()

        asyncio.run(scenario())

    def test_server_echoes_trace_context(self):
        async def scenario():
            server = CryptoServer(ServeConfig(port=0))
            await server.start()
            try:
                host, port = server.address
                reader, writer = await asyncio.open_connection(
                    host, port)
                try:
                    from repro.serve.protocol import (
                        read_frame,
                        write_frame,
                    )
                    request = Frame(op=Op.PING, request_id=7,
                                    payload=b"x", trace_id=0xABC,
                                    parent_span_id=0xDEF)
                    await write_frame(writer, request, timeout=5.0)
                    reply = await read_frame(reader, timeout=5.0)
                    assert reply.status is Status.OK
                    assert reply.trace_id == 0xABC
                    assert reply.parent_span_id == 0xDEF
                finally:
                    writer.close()
            finally:
                await server.stop()

        asyncio.run(scenario())


class _V1Stub:
    """A frozen version-1 peer: rejects any other version byte the
    way the pre-trace server did — BAD_FRAME with request id 0 —
    and answers version-1 PINGs properly."""

    def __init__(self):
        self.server = None
        self.rejected = 0

    async def start(self):
        self.server = await asyncio.start_server(
            self._serve, "127.0.0.1", 0)
        return self.server.sockets[0].getsockname()[:2]

    async def stop(self):
        self.server.close()
        await self.server.wait_closed()

    async def _serve(self, reader, writer):
        try:
            while True:
                prefix = await reader.readexactly(4)
                body = await reader.readexactly(
                    int.from_bytes(prefix, "big"))
                if body[2] != VERSION:
                    self.rejected += 1
                    reply = Frame(op=Op.PING).error(
                        Status.BAD_FRAME,
                        f"protocol version mismatch: peer speaks "
                        f"{body[2]}",
                    )
                else:
                    reply = decode_body(body).response()
                writer.write(encode_frame(reply))
                await writer.drain()
        except (asyncio.IncompleteReadError, ConnectionError):
            pass
        finally:
            writer.close()


class TestVersionNegotiation:
    def test_v2_client_downgrades_against_v1_server(self):
        tracer = enable_tracing()
        tracer.clear()
        try:
            async def scenario():
                stub = _V1Stub()
                host, port = await stub.start()
                try:
                    client = CryptoClient(
                        host, port,
                        retry=RetryPolicy(attempts=3,
                                          base_delay=0.01),
                    )
                    try:
                        # Tracing is on, so the first attempt goes
                        # out traced, gets rejected, and the retry
                        # succeeds untraced.
                        reply = await client.ping(b"hello")
                        assert reply.status is Status.OK
                        assert client._trace_wire is False
                        # Later requests skip the traced attempt.
                        rejected_before = stub.rejected
                        reply = await client.ping(b"again")
                        assert reply.status is Status.OK
                        assert stub.rejected == rejected_before
                    finally:
                        await client.close()
                finally:
                    await stub.stop()
                assert stub.rejected == 1

            asyncio.run(scenario())
        finally:
            disable_tracing()

    def test_v1_frames_still_decode_via_old_header(self):
        # Belt-and-braces: an untraced frame is byte-identical to
        # what a v1 peer produces (header version byte included).
        wire = encode_frame(Frame(op=Op.PING, payload=b"z"))
        assert wire[6] == VERSION
        assert len(wire) == 4 + HEADER_BYTES + 1
