"""End-to-end loopback tests of the crypto server.

Everything runs in-process on a loopback socket with an OS-assigned
port; each scenario owns its own event loop via ``asyncio.run`` so no
state leaks between tests.
"""

import asyncio
import random

import pytest

from repro.aes import gcm, modes
from repro.obs.metrics import global_registry
from repro.serve.client import CryptoClient, RetryPolicy, run_load
from repro.serve.protocol import (
    MAX_PAYLOAD_BYTES,
    Frame,
    Mode,
    Op,
    Status,
    read_frame,
    write_frame,
)
from repro.serve.server import (
    GCM_MAX_PLAINTEXT_BYTES,
    CryptoServer,
    ServeConfig,
    Session,
)


def _counter_total(name: str, **labels) -> float:
    metric = global_registry().get(name)
    if metric is None:
        return 0.0
    total = 0.0
    for child in metric.children():
        pairs = dict(child.label_pairs)
        if all(pairs.get(k) == v for k, v in labels.items()):
            total += child.value
    return total


async def _started(config: ServeConfig = None) -> CryptoServer:
    server = CryptoServer(config or ServeConfig(port=0))
    await server.start()
    return server


class TestEndToEnd:
    def test_concurrent_clients_match_mode_layer(self):
        """>= 8 concurrent clients, each with its own key, across
        ECB/CTR/GCM — every response must match the mode layer
        bit for bit."""

        async def scenario():
            server = await _started()
            host, port = server.address
            rng = random.Random(2003)
            jobs = []
            for index in range(9):
                key = rng.randbytes(16)
                data = rng.randbytes(16 * (4 + index))
                nonce = rng.randbytes(8)
                iv = rng.randbytes(12)
                jobs.append((key, data, nonce, iv))

            async def one_client(index):
                key, data, nonce, iv = jobs[index]
                async with CryptoClient(host, port) as client:
                    reply = await client.load_key(key)
                    assert reply.status is Status.OK
                    # ECB: encrypt then decrypt round-trips, and the
                    # ciphertext is the mode layer's answer.
                    reply = await client.encrypt(Mode.ECB, data)
                    assert reply.status is Status.OK
                    assert reply.payload == \
                        modes.ecb_encrypt(key, data)
                    back = await client.decrypt(Mode.ECB,
                                                reply.payload)
                    assert back.payload == data
                    # CTR with a ragged tail.
                    ragged = data[:-5]
                    reply = await client.encrypt(Mode.CTR,
                                                 nonce + ragged)
                    assert reply.payload == \
                        modes.ctr_xcrypt(key, nonce, ragged)
                    # GCM: ciphertext||tag, and decrypt releases the
                    # plaintext.
                    reply = await client.encrypt(Mode.GCM, iv + data)
                    ct, tag = gcm.gcm_encrypt(key, iv, data)
                    assert reply.payload == ct + tag
                    back = await client.decrypt(Mode.GCM,
                                                iv + reply.payload)
                    assert back.status is Status.OK
                    assert back.payload == data

            try:
                await asyncio.gather(
                    *(one_client(i) for i in range(len(jobs)))
                )
            finally:
                await server.stop()

        asyncio.run(scenario())

    def test_gcm_auth_failure_error_frame_and_counter(self):
        async def scenario():
            server = await _started()
            host, port = server.address
            key = bytes(range(16))
            iv = b"\x01" * 12
            before = _counter_total(
                "repro_aes_gcm_auth_failures_total"
            )
            async with CryptoClient(host, port) as client:
                await client.load_key(key)
                reply = await client.encrypt(Mode.GCM, iv + b"secret")
                corrupted = bytearray(reply.payload)
                corrupted[-1] ^= 0x01  # break the tag
                bad = await client.decrypt(Mode.GCM,
                                           iv + bytes(corrupted))
                assert bad.status is Status.AUTH_FAILED
                assert b"secret" not in bad.payload
                # The connection survives the auth failure.
                ok = await client.ping(b"still-alive")
                assert ok.payload == b"still-alive"
            await server.stop()
            after = _counter_total(
                "repro_aes_gcm_auth_failures_total"
            )
            assert after == before + 1

        asyncio.run(scenario())

    def test_crypto_before_load_key_is_no_key(self):
        async def scenario():
            server = await _started()
            host, port = server.address
            async with CryptoClient(host, port) as client:
                reply = await client.encrypt(Mode.ECB, b"x" * 16)
                assert reply.status is Status.NO_KEY
            await server.stop()

        asyncio.run(scenario())

    def test_bad_payloads_answer_bad_request(self):
        async def scenario():
            server = await _started()
            host, port = server.address
            async with CryptoClient(host, port) as client:
                reply = await client.load_key(b"short")
                assert reply.status is Status.BAD_REQUEST
                await client.load_key(bytes(16))
                # Misaligned ECB data.
                reply = await client.encrypt(Mode.ECB, b"x" * 15)
                assert reply.status is Status.BAD_REQUEST
                # CTR payload shorter than its nonce prefix.
                reply = await client.encrypt(Mode.CTR, b"abc")
                assert reply.status is Status.BAD_REQUEST
                # GCM decrypt without room for IV + tag.
                reply = await client.decrypt(Mode.GCM, b"tiny")
                assert reply.status is Status.BAD_REQUEST
                # RAW is not a cipher mode.
                reply = await client.encrypt(Mode.RAW, b"x" * 16)
                assert reply.status is Status.BAD_REQUEST
            await server.stop()

        asyncio.run(scenario())

    def test_oversized_gcm_encrypt_rejected_before_crypto(self):
        """A GCM ENCRYPT whose ciphertext+tag response would not fit
        one frame must bounce with BAD_REQUEST — not raise while
        framing the response and kill the worker task."""

        async def scenario():
            server = await _started()
            host, port = server.address
            async with CryptoClient(host, port) as client:
                await client.load_key(bytes(16))
                too_big = (bytes(12)
                           + bytes(GCM_MAX_PLAINTEXT_BYTES + 1))
                assert len(too_big) <= MAX_PAYLOAD_BYTES
                reply = await client.encrypt(Mode.GCM, too_big)
                assert reply.status is Status.BAD_REQUEST
                # The worker survived and still drains the queue.
                ok = await client.ping(b"alive")
                assert ok.payload == b"alive"
            await server.stop()

        asyncio.run(scenario())

    def test_unframeable_response_answers_internal(self):
        """Defense in depth behind the up-front size checks: if a
        handler ever produces a response too large to frame, the
        connection gets a small INTERNAL error and the worker
        lives on."""

        async def scenario():
            server = await _started()

            async def huge(session: Session, frame: Frame) -> Frame:
                return frame.response(
                    payload=b"\x00" * (MAX_PAYLOAD_BYTES + 1)
                )

            server._handlers[Op.PING] = huge
            host, port = server.address
            async with CryptoClient(
                host, port, retry=RetryPolicy(attempts=1)
            ) as client:
                reply = await client.ping(b"x")
                assert reply.status is Status.INTERNAL
                # The same connection (and worker) still serves.
                reply = await client.load_key(bytes(16))
                assert reply.status is Status.OK
            await server.stop()

        asyncio.run(scenario())

    def test_malformed_frame_answered_connection_survives(self):
        async def scenario():
            server = await _started()
            host, port = server.address
            reader, writer = await asyncio.open_connection(host, port)
            try:
                # A well-delimited frame with bad magic: BAD_FRAME
                # response, and the stream stays usable.
                from repro.serve.protocol import encode_frame
                wire = bytearray(encode_frame(Frame(op=Op.PING)))
                wire[4:6] = b"XX"
                writer.write(bytes(wire))
                await writer.drain()
                reply = await read_frame(reader, timeout=5.0)
                assert reply.status is Status.BAD_FRAME
                # The same connection still answers a good frame.
                await write_frame(
                    writer, Frame(op=Op.PING, request_id=3,
                                  payload=b"ok"),
                    timeout=5.0,
                )
                reply = await read_frame(reader, timeout=5.0)
                assert reply.status is Status.OK
                assert reply.payload == b"ok"
            finally:
                writer.close()
                await server.stop()

        asyncio.run(scenario())

    def test_slow_handler_trips_timeout_connection_survives(self):
        async def scenario():
            config = ServeConfig(port=0, request_timeout=0.1)
            server = await _started(config)

            async def stalled(session: Session,
                              frame: Frame) -> Frame:
                await asyncio.sleep(30.0)
                return frame.response()

            server._handlers[Op.PING] = stalled
            host, port = server.address
            async with CryptoClient(
                host, port, retry=RetryPolicy(attempts=1)
            ) as client:
                reply = await client.ping(b"hello")
                assert reply.status is Status.TIMEOUT
                # The worker abandoned the request; the connection
                # still serves other ops.
                reply = await client.load_key(bytes(16))
                assert reply.status is Status.OK
            await server.stop()

        asyncio.run(scenario())

    def test_full_queue_answers_overloaded(self):
        async def scenario():
            # One worker wedged by a stalled handler, queue depth 1:
            # the first request occupies the worker, the second sits
            # in the queue, the third must bounce with OVERLOADED.
            config = ServeConfig(port=0, queue_depth=1, workers=1,
                                 request_timeout=30.0,
                                 drain_timeout=0.2)
            server = await _started(config)

            async def stalled(session, frame):
                await asyncio.sleep(30.0)
                return frame.response()

            server._handlers[Op.PING] = stalled
            host, port = server.address
            reader, writer = await asyncio.open_connection(host, port)
            try:
                for request_id in (1, 2, 3):
                    await write_frame(
                        writer,
                        Frame(op=Op.PING, request_id=request_id),
                        timeout=5.0,
                    )
                reply = await read_frame(reader, timeout=5.0)
                assert reply.status is Status.OVERLOADED
                assert reply.request_id == 3
            finally:
                writer.close()
                await server.stop()

        asyncio.run(scenario())

    def test_graceful_shutdown_drains_inflight(self):
        async def scenario():
            config = ServeConfig(port=0, workers=2,
                                 drain_timeout=10.0)
            server = await _started(config)

            release = asyncio.Event()
            processed = []

            async def gated(session, frame):
                await release.wait()
                processed.append(frame.request_id)
                return frame.response(payload=b"done")

            server._handlers[Op.PING] = gated
            host, port = server.address
            reader, writer = await asyncio.open_connection(host, port)
            await write_frame(writer, Frame(op=Op.PING, request_id=7),
                              timeout=5.0)
            await asyncio.sleep(0.05)  # let it get queued
            stopper = asyncio.get_running_loop().create_task(
                server.stop()
            )
            await asyncio.sleep(0.05)
            release.set()  # in-flight request completes during drain
            reply = await read_frame(reader, timeout=5.0)
            assert reply.status is Status.OK
            assert reply.payload == b"done"
            await stopper
            assert processed == [7]
            writer.close()

        asyncio.run(scenario())

    def test_shutdown_frame_stops_server(self):
        async def scenario():
            server = await _started()
            host, port = server.address
            async with CryptoClient(host, port) as client:
                reply = await client.shutdown()
                assert reply.status is Status.OK
            await asyncio.wait_for(server.wait_stopped(), 10.0)
            # The remotely-triggered stop task is strongly referenced
            # (the loop keeps only weak refs to tasks, so an
            # anonymous one could be collected mid-shutdown).
            assert server._stop_task is not None
            assert server._stop_task.done()
            # New requests while stopping answer SHUTTING_DOWN or the
            # listener is already closed.
            with pytest.raises((ConnectionError, OSError)):
                await asyncio.open_connection(host, port)

        asyncio.run(scenario())

    def test_worker_task_exception_storm_server_survives(self):
        """Seed-bug regression (PR 5): a burst of handler exceptions
        must not thin out the worker pool.  Every request in the
        storm gets an INTERNAL error frame, every worker task is
        still alive afterwards, and the next honest request is
        served normally."""

        async def scenario():
            config = ServeConfig(port=0, workers=2)
            server = await _started(config)

            async def exploding(session: Session,
                                frame: Frame) -> Frame:
                raise RuntimeError("handler bug")

            honest_ping = server._handlers[Op.PING]
            server._handlers[Op.PING] = exploding
            host, port = server.address

            async def one_client() -> list:
                async with CryptoClient(
                    host, port, retry=RetryPolicy(attempts=1)
                ) as client:
                    return [await client.ping(b"boom")
                            for _ in range(3)]

            # Far more failures than workers, across 8 concurrent
            # connections.
            replies = [
                reply
                for batch in await asyncio.gather(
                    *(one_client() for _ in range(8)))
                for reply in batch
            ]
            assert len(replies) == 24
            assert all(r.status is Status.INTERNAL for r in replies)
            # No worker died: the tasks the storm would have killed
            # before the _worker hardening are all alive.
            assert len(server._workers) == 2
            assert not any(t.done() for t in server._workers)
            # And the pool still serves honest traffic.
            server._handlers[Op.PING] = honest_ping
            async with CryptoClient(
                host, port, retry=RetryPolicy(attempts=1)
            ) as client:
                reply = await client.ping(b"hello")
                assert reply.status is Status.OK
                reply = await client.load_key(bytes(16))
                assert reply.status is Status.OK
                ct = await client.encrypt(Mode.ECB, bytes(32))
                assert ct.status is Status.OK
            await server.stop()

        asyncio.run(scenario())

    def test_requests_during_drain_answer_shutting_down(self):
        async def scenario():
            server = await _started(ServeConfig(port=0))
            host, port = server.address
            reader, writer = await asyncio.open_connection(host, port)
            server._stopping = True  # simulate an in-progress drain
            try:
                await write_frame(writer,
                                  Frame(op=Op.PING, request_id=1),
                                  timeout=5.0)
                reply = await read_frame(reader, timeout=5.0)
                assert reply.status is Status.SHUTTING_DOWN
            finally:
                writer.close()
                server._stopping = False
                await server.stop()

        asyncio.run(scenario())


class TestObservability:
    def test_request_and_byte_counters_move(self):
        async def scenario():
            server = await _started()
            host, port = server.address
            before_ok = _counter_total("repro_serve_requests_total",
                                       status="ok")
            before_in = _counter_total("repro_serve_bytes_total",
                                       direction="in")
            report = await run_load(host, port, bytes(16),
                                    clients=2, requests=3,
                                    payload_bytes=256)
            await server.stop()
            assert report.requests == 6
            assert report.errors == 0
            after_ok = _counter_total("repro_serve_requests_total",
                                      status="ok")
            after_in = _counter_total("repro_serve_bytes_total",
                                      direction="in")
            # 2 LOAD_KEYs + 6 encrypts all landed OK.
            assert after_ok - before_ok == 8
            assert after_in > before_in

        asyncio.run(scenario())

    def test_session_repr_redacts_key(self):
        session = Session(session_id=5, key=b"\xaa" * 16)
        text = repr(session)
        assert "aa" * 8 not in text
        assert "loaded" in text

    def test_latency_histogram_populated(self):
        async def scenario():
            server = await _started()
            host, port = server.address
            async with CryptoClient(host, port) as client:
                await client.ping(b"x")
            await server.stop()

        asyncio.run(scenario())
        metric = global_registry().get("repro_serve_request_seconds")
        assert metric is not None
        totals = [child.count for child in metric.children()]
        assert sum(totals) >= 1
