"""Tests of the network serving layer (:mod:`repro.serve`)."""
