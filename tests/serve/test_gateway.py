"""Gateway tests: hash-ring determinism, session affinity, shedding,
drain semantics and backend loss.

The ring tests are pure; the end-to-end tests put real in-process
:class:`CryptoServer` backends behind one :class:`Gateway` on
loopback, each scenario owning its own event loop via ``asyncio.run``
(the same discipline as ``test_server.py``).  The multi-*process*
topology lives in ``test_cluster.py``.
"""

import asyncio
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.aes import modes
from repro.serve.client import (
    CryptoClient,
    RetryPolicy,
    derive_session_key,
    run_session_load,
)
from repro.serve.gateway import (
    BackendSpec,
    Gateway,
    GatewayConfig,
    HashRing,
    _probe_ready,
)
from repro.serve.protocol import Frame, Mode, Op, Status, \
    read_frame, write_frame
from repro.serve.server import CryptoServer, ServeConfig

_SRC = Path(__file__).resolve().parents[2] / "src"


class TestHashRing:
    MEMBERS = ("worker-0", "worker-1", "worker-2", "worker-3")

    def _ring(self, members=MEMBERS):
        ring = HashRing()
        for member in members:
            ring.add(member)
        return ring

    def test_rejects_nonpositive_replicas(self):
        with pytest.raises(ValueError, match="replicas"):
            HashRing(replicas=0)

    def test_empty_ring_has_no_owner(self):
        assert HashRing().lookup(1) is None

    def test_add_and_remove_are_idempotent(self):
        ring = self._ring()
        before = [ring.lookup(k) for k in range(64)]
        ring.add("worker-0")
        ring.remove("no-such-member")
        assert [ring.lookup(k) for k in range(64)] == before
        assert ring.members() == tuple(sorted(self.MEMBERS))

    def test_placement_is_deterministic_across_processes(self):
        """blake2b points, not the salted builtin hash: a fresh
        interpreter places every key identically (a restarted
        gateway must not re-shard live sessions)."""
        ring = self._ring()
        local = ",".join(ring.lookup(k) for k in range(1, 65))
        code = (
            "from repro.serve.gateway import HashRing\n"
            "ring = HashRing()\n"
            f"for m in {self.MEMBERS!r}:\n"
            "    ring.add(m)\n"
            "print(','.join(ring.lookup(k) for k in range(1, 65)))\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = str(_SRC)
        proc = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, env=env, timeout=60,
        )
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.strip() == local

    def test_remove_remaps_only_the_lost_members_keys(self):
        ring = self._ring()
        keys = range(1, 513)
        before = {k: ring.lookup(k) for k in keys}
        ring.remove("worker-2")
        after = {k: ring.lookup(k) for k in keys}
        for k in keys:
            if before[k] != "worker-2":
                # Surviving members keep every key they owned.
                assert after[k] == before[k]
            else:
                assert after[k] != "worker-2"
        moved = sum(1 for k in keys if before[k] != after[k])
        owned = sum(1 for k in keys if before[k] == "worker-2")
        assert moved == owned

    def test_rejoin_restores_original_placement(self):
        ring = self._ring()
        keys = range(1, 257)
        before = {k: ring.lookup(k) for k in keys}
        ring.remove("worker-1")
        ring.add("worker-1")
        assert {k: ring.lookup(k) for k in keys} == before

    def test_load_spreads_over_every_member(self):
        ring = self._ring()
        counts = {member: 0 for member in self.MEMBERS}
        for k in range(4096):
            counts[ring.lookup(k)] += 1
        # 64 virtual nodes per member keep the spread coarse-even;
        # the bound here is deliberately loose (determinism makes it
        # stable, the assertion just guards against a degenerate
        # ring that parks everything on one member).
        for member, count in counts.items():
            assert count > 4096 * 0.05, (member, counts)


def _counter_total(name: str, **labels) -> float:
    from repro.obs.metrics import global_registry

    metric = global_registry().get(name)
    if metric is None:
        return 0.0
    total = 0.0
    for child in metric.children():
        pairs = dict(child.label_pairs)
        if all(pairs.get(k) == v for k, v in labels.items()):
            total += child.value
    return total


async def _backend() -> CryptoServer:
    server = CryptoServer(ServeConfig(port=0))
    await server.start()
    return server


async def _gateway(backends, **config) -> Gateway:
    gateway = Gateway(GatewayConfig(port=0, **config))
    await gateway.start()
    for index, server in enumerate(backends):
        host, port = server.address
        gateway.add_backend(BackendSpec(
            shard=f"worker-{index}", host=host, port=port,
        ))
    return gateway


_FAST = RetryPolicy(attempts=1, base_delay=0.0)


class TestGatewayRouting:
    def test_session_affinity_and_correctness(self):
        """Nonzero session ids: one LOAD_KEY, then every request on
        the same connection answers from the worker holding that key
        — a reroute would surface as NO_KEY, so all-OK plus matching
        ciphertext *is* the affinity proof."""

        async def scenario():
            backends = [await _backend() for _ in range(3)]
            gateway = await _gateway(backends)
            host, port = gateway.address
            base_key = bytes(range(16))
            placements = {sid: gateway.shard_for(sid)
                          for sid in range(1, 9)}
            # The sessions below must actually exercise more than
            # one shard for this test to mean anything.
            assert len(set(placements.values())) >= 2

            async def one_session(sid):
                key = derive_session_key(base_key, sid)
                data = bytes((sid + i) % 256 for i in range(64))
                nonce = sid.to_bytes(8, "big")
                async with CryptoClient(host, port, retry=_FAST,
                                        session_id=sid) as client:
                    reply = await client.load_key(key)
                    assert reply.status is Status.OK
                    for _ in range(6):
                        reply = await client.encrypt(Mode.CTR,
                                                     nonce + data)
                        assert reply.status is Status.OK
                        assert reply.payload == \
                            modes.ctr_xcrypt(key, nonce, data)

            try:
                await asyncio.gather(
                    *(one_session(sid) for sid in placements)
                )
            finally:
                await gateway.stop()
                for server in backends:
                    await server.stop()

        asyncio.run(scenario())

    def test_anonymous_connection_pins_to_one_worker(self):
        """Session id 0 hashes by a per-connection key: LOAD_KEY and
        the follow-ups land on one worker even without a session."""

        async def scenario():
            backends = [await _backend() for _ in range(3)]
            gateway = await _gateway(backends)
            host, port = gateway.address
            key = bytes(range(16))
            try:
                for _ in range(4):  # distinct fallback keys
                    async with CryptoClient(host, port,
                                            retry=_FAST) as client:
                        reply = await client.load_key(key)
                        assert reply.status is Status.OK
                        for _ in range(4):
                            reply = await client.encrypt(
                                Mode.ECB, bytes(16))
                            assert reply.status is Status.OK
            finally:
                await gateway.stop()
                for server in backends:
                    await server.stop()

        asyncio.run(scenario())

    def test_no_backend_is_a_retryable_overloaded(self):
        async def scenario():
            gateway = await _gateway([])
            host, port = gateway.address
            try:
                async with CryptoClient(host, port,
                                        retry=_FAST) as client:
                    reply = await client.ping()
                    assert reply.status is Status.OVERLOADED
                    assert b"no healthy backend" in reply.payload
            finally:
                await gateway.stop()

        asyncio.run(scenario())

    def test_saturated_shard_sheds(self):
        """shed_inflight=0 makes every route a shed: the gateway
        answers OVERLOADED itself and counts the outcome."""

        async def scenario():
            backend = await _backend()
            gateway = await _gateway([backend], shed_inflight=0)
            host, port = gateway.address
            before = _counter_total("repro_gateway_requests_total",
                                    outcome="shed")
            try:
                async with CryptoClient(host, port,
                                        retry=_FAST) as client:
                    reply = await client.ping()
                    assert reply.status is Status.OVERLOADED
                    assert b"saturated" in reply.payload
            finally:
                await gateway.stop()
                await backend.stop()
            assert _counter_total("repro_gateway_requests_total",
                                  outcome="shed") > before

        asyncio.run(scenario())

    def test_trace_context_passes_through(self):
        """A v2 traced frame keeps its trace ids across both hops
        (client->gateway, gateway->worker) and back."""

        async def scenario():
            backend = await _backend()
            gateway = await _gateway([backend])
            host, port = gateway.address
            try:
                reader, writer = await asyncio.open_connection(
                    host, port)
                try:
                    await write_frame(writer, Frame(
                        op=Op.PING, request_id=7, payload=b"t",
                        session_id=3,
                        trace_id=0x1234, parent_span_id=0x5678,
                    ), timeout=10.0)
                    reply = await read_frame(reader, timeout=10.0)
                finally:
                    writer.close()
                assert reply is not None
                assert reply.status is Status.OK
                assert reply.request_id == 7
                assert reply.trace_id == 0x1234
                assert reply.parent_span_id == 0x5678
            finally:
                await gateway.stop()
                await backend.stop()

        asyncio.run(scenario())


class TestGatewayLifecycle:
    def test_lost_backend_answers_retryable_then_leaves_ring(self):
        async def scenario():
            backend = await _backend()
            gateway = await _gateway([backend])
            host, port = gateway.address
            try:
                async with CryptoClient(host, port, retry=_FAST,
                                        session_id=1) as client:
                    reply = await client.load_key(bytes(16))
                    assert reply.status is Status.OK
                    await backend.stop()
                    # The dead upstream surfaces as OVERLOADED —
                    # retryable, so a real client's backoff absorbs
                    # it — and the failed dial drops the shard.
                    reply = await client.ping()
                    assert reply.status is Status.OVERLOADED
                    deadline = asyncio.get_running_loop().time() + 5
                    while (gateway.shards()
                           and asyncio.get_running_loop().time()
                           < deadline):
                        reply = await client.ping()
                        assert reply.status is Status.OVERLOADED
                        await asyncio.sleep(0.02)
                    assert gateway.shards() == ()
                    reply = await client.ping()
                    assert reply.status is Status.OVERLOADED
                    assert b"no healthy backend" in reply.payload
            finally:
                await gateway.stop()

        asyncio.run(scenario())

    def test_readyz_requires_a_healthy_backend(self):
        """Drain-aware readiness: an empty ring answers 503 on
        /readyz; registering a backend flips it to 200."""

        async def scenario():
            gateway = Gateway(GatewayConfig(port=0, admin_port=0))
            await gateway.start()
            backend = await _backend()
            try:
                host, port = gateway.admin_address
                assert not await _probe_ready(host, port, 5.0)
                bhost, bport = backend.address
                gateway.add_backend(BackendSpec(
                    shard="worker-0", host=bhost, port=bport))
                assert await _probe_ready(host, port, 5.0)
            finally:
                await gateway.stop()
                await backend.stop()
            # Stopped: the admin plane is gone, the probe fails.
            assert not await _probe_ready(host, port, 2.0)

        asyncio.run(scenario())

    def test_shutdown_frame_drains_via_callback(self):
        """A SHUTDOWN frame at the gateway answers OK and fires the
        cluster-stop callback exactly once."""

        async def scenario():
            calls = []
            stopped = asyncio.Event()

            async def on_shutdown():
                calls.append(1)
                stopped.set()

            backend = await _backend()
            gateway = Gateway(GatewayConfig(port=0),
                              on_shutdown=on_shutdown)
            await gateway.start()
            bhost, bport = backend.address
            gateway.add_backend(BackendSpec(
                shard="worker-0", host=bhost, port=bport))
            host, port = gateway.address
            try:
                async with CryptoClient(host, port,
                                        retry=_FAST) as client:
                    reply = await client.shutdown()
                    assert reply.status is Status.OK
                    await asyncio.wait_for(stopped.wait(), 5.0)
                    reply = await client.shutdown()
                    assert reply.status is Status.OK
                await asyncio.sleep(0.05)
                assert calls == [1]
            finally:
                await gateway.stop()
                await backend.stop()

        asyncio.run(scenario())

    def test_session_load_through_gateway(self):
        """The cluster loadgen against in-process backends: every
        request answered, zero errors, per-shard latency windows
        populated."""

        async def scenario():
            backends = [await _backend() for _ in range(2)]
            gateway = await _gateway(backends)
            host, port = gateway.address
            try:
                report = await run_session_load(
                    host, port, bytes(range(16)),
                    sessions=6, requests=4, mode=Mode.CTR,
                    payload_bytes=256,
                )
            finally:
                await gateway.stop()
                for server in backends:
                    await server.stop()
            assert report.errors == 0
            assert report.requests == 6 * 4
            snapshot = gateway.quantiles_snapshot()["routed_seconds"]
            assert snapshot  # at least one shard window observed
            text = gateway.metrics_text()
            assert "repro_gateway_requests_total" in text
            assert "repro_gateway_request_window_seconds" in text

        asyncio.run(scenario())
