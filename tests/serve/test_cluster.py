"""Multi-process cluster tests: real spawned workers behind the
gateway.

These are the failure-path tests the in-loop gateway suite cannot
express: a worker process killed mid-load and restarted by the
supervisor, a clean exit shrinking the pool, and the shared-port
(no-gateway) topology in both of its modes.  Everything binds
OS-assigned loopback ports; each scenario owns its own event loop.
"""

import asyncio
import socket

import pytest

from repro.serve.client import (
    CryptoClient,
    RetryPolicy,
    run_load,
    run_session_load,
)
from repro.serve.cluster import Cluster, ClusterConfig
from repro.serve.protocol import Mode, Status

_BASE_KEY = bytes(range(16))


async def _http_get(host: str, port: int, path: str,
                    timeout: float = 5.0) -> str:
    reader, writer = await asyncio.wait_for(
        asyncio.open_connection(host, port), timeout
    )
    try:
        writer.write(
            f"GET {path} HTTP/1.1\r\nHost: test\r\n"
            f"Connection: close\r\n\r\n".encode("ascii")
        )
        await asyncio.wait_for(writer.drain(), timeout)
        raw = await asyncio.wait_for(reader.read(-1), timeout)
    finally:
        writer.close()
    return raw.decode("utf-8", errors="replace")


def _encrypts_served(metrics_body: str) -> float:
    """Sum of ``repro_serve_requests_total{...op="encrypt"...}``
    samples in one worker /metrics scrape."""
    total = 0.0
    for line in metrics_body.splitlines():
        if (line.startswith("repro_serve_requests_total{")
                and 'op="encrypt"' in line):
            total += float(line.rsplit(" ", 1)[1])
    return total


class TestClusterEndToEnd:
    def test_session_load_moves_both_shards_then_shutdown_frame(self):
        """Sessions spread over both workers (per-shard admin
        scrapes prove each served encrypts), and one SHUTDOWN frame
        at the gateway drains the whole cluster."""

        async def scenario():
            cluster = Cluster(ClusterConfig(workers=2))
            await cluster.start()
            try:
                host, port = cluster.address
                placements = {sid: cluster.gateway.shard_for(sid)
                              for sid in range(1, 9)}
                assert len(set(placements.values())) == 2
                report = await run_session_load(
                    host, port, _BASE_KEY,
                    sessions=8, requests=2, mode=Mode.CTR,
                    payload_bytes=256,
                )
                assert report.errors == 0
                assert report.requests == 16
                for handle in cluster.supervisor.handles():
                    body = await _http_get(
                        handle.host, handle.admin_port, "/metrics")
                    assert _encrypts_served(body) > 0, handle.shard
                async with CryptoClient(
                        host, port,
                        retry=RetryPolicy(attempts=2)) as client:
                    reply = await client.shutdown()
                    assert reply.status is Status.OK
                await asyncio.wait_for(cluster.wait_stopped(), 30)
                assert not any(
                    h.process.is_alive()
                    for h in cluster.supervisor.handles()
                )
            finally:
                await cluster.stop()

        asyncio.run(scenario())

    def test_worker_crash_mid_load_restarts_and_load_completes(self):
        """SIGKILL one worker while sessions are in flight: the
        gateway answers its in-flight requests retryably, the client
        backoff (plus the NO_KEY re-load) absorbs the gap, and the
        supervisor restarts the worker under the same shard name."""

        async def scenario():
            cluster = Cluster(ClusterConfig(
                workers=2,
                restart_backoff_s=0.05,
                restart_backoff_max_s=0.2,
            ))
            await cluster.start()
            try:
                host, port = cluster.address
                victim = cluster.supervisor.handles()[0]
                victim_pid = victim.process.pid

                async def kill_soon():
                    await asyncio.sleep(0.3)
                    victim.process.kill()

                killer = asyncio.get_running_loop().create_task(
                    kill_soon())
                report = await run_session_load(
                    host, port, _BASE_KEY,
                    sessions=6, requests=20, mode=Mode.CTR,
                    payload_bytes=512,
                    retry=RetryPolicy(attempts=8, base_delay=0.05),
                )
                await killer
                assert report.requests == 6 * 20
                assert report.errors == 0
                loop = asyncio.get_running_loop()
                deadline = loop.time() + 15
                replacement = None
                while loop.time() < deadline:
                    handles = {h.index: h for h in
                               cluster.supervisor.handles()}
                    candidate = handles.get(victim.index)
                    if (candidate is not None
                            and candidate.process.pid != victim_pid
                            and candidate.process.is_alive()):
                        replacement = candidate
                        break
                    await asyncio.sleep(0.05)
                assert replacement is not None, \
                    "supervisor never restarted the killed worker"
                assert replacement.restarts >= 1
                assert replacement.shard == victim.shard
            finally:
                await cluster.stop()

        asyncio.run(scenario())

    def test_clean_exit_shrinks_pool_and_survivor_serves(self):
        """SIGTERM makes a worker drain and exit 0 — intentional, so
        the supervisor shrinks the pool instead of restarting, the
        gateway drops the shard, and rerouted sessions still answer
        (NO_KEY on the new shard is absorbed by the loadgen)."""

        async def scenario():
            cluster = Cluster(ClusterConfig(workers=2))
            await cluster.start()
            try:
                host, port = cluster.address
                handles = cluster.supervisor.handles()
                assert len(handles) == 2
                victim = handles[1]
                victim.process.terminate()
                loop = asyncio.get_running_loop()
                deadline = loop.time() + 15
                while (loop.time() < deadline
                       and len(cluster.supervisor.handles()) != 1):
                    await asyncio.sleep(0.05)
                survivors = cluster.supervisor.handles()
                assert len(survivors) == 1
                assert survivors[0].index == 0
                assert victim.process.exitcode == 0
                assert cluster.gateway.shards() == ("worker-0",)
                report = await run_session_load(
                    host, port, _BASE_KEY,
                    sessions=3, requests=3, mode=Mode.CTR,
                    payload_bytes=256,
                    retry=RetryPolicy(attempts=4, base_delay=0.05),
                )
                assert report.errors == 0
                assert report.requests == 9
            finally:
                await cluster.stop()

        asyncio.run(scenario())


class TestSharedPortTopology:
    """Direct mode: every worker serves one port, no gateway."""

    def _round_trip(self, reuse_port):
        async def scenario():
            cluster = Cluster(ClusterConfig(
                workers=2, shared_port=0, reuse_port=reuse_port,
                worker_admin=False,
            ))
            await cluster.start()
            try:
                assert cluster.gateway is None
                host, port = cluster.address
                report = await run_load(
                    host, port, _BASE_KEY,
                    clients=3, requests=3, payload_bytes=256,
                )
                assert report.errors == 0
                assert report.requests == 9
            finally:
                await cluster.stop()

        asyncio.run(scenario())

    def test_prefork_shared_listener(self):
        self._round_trip(reuse_port=False)

    @pytest.mark.skipif(
        not hasattr(socket, "SO_REUSEPORT"),
        reason="platform has no SO_REUSEPORT",
    )
    def test_so_reuseport(self):
        self._round_trip(reuse_port=True)


class TestClusterCli:
    def test_cluster_parser_defaults(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["cluster", "--workers", "3", "--admin-port", "0"])
        assert args.workers == 3
        assert args.gateway_port == 0
        assert args.admin_port == 0
        assert args.shared_port is None

    def test_loadgen_sessions_flag_parses(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["loadgen", "--port", "1", "--sessions", "5"])
        assert args.sessions == 5
        args = build_parser().parse_args(
            ["loadgen", "--port", "1"])
        assert args.sessions is None

    def test_bench_no_cluster_flag_parses(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["bench", "--no-cluster"])
        assert args.no_cluster is True
