"""Unit tests for the GF(2^8)[x]/(x^4+1) column ring."""

import pytest

from repro.gf.polyring import (
    ColumnPolynomial,
    INV_MIX_POLY,
    MIX_POLY,
    ring_mul,
)

ONE = ColumnPolynomial((1, 0, 0, 0))


class TestColumnPolynomial:
    def test_requires_four_coefficients(self):
        with pytest.raises(ValueError):
            ColumnPolynomial((1, 2, 3))
        with pytest.raises(ValueError):
            ColumnPolynomial((1, 2, 3, 4, 5))

    def test_rejects_out_of_range_coefficients(self):
        with pytest.raises(ValueError):
            ColumnPolynomial((0x100, 0, 0, 0))

    def test_equality_and_hash(self):
        a = ColumnPolynomial((1, 2, 3, 4))
        b = ColumnPolynomial((1, 2, 3, 4))
        assert a == b
        assert hash(a) == hash(b)
        assert a != ColumnPolynomial((4, 3, 2, 1))

    def test_addition_is_coefficientwise_xor(self):
        a = ColumnPolynomial((0x57, 0x83, 0x1A, 0x00))
        b = ColumnPolynomial((0x83, 0x83, 0x01, 0xFF))
        assert (a + b).coeffs == (0xD4, 0x00, 0x1B, 0xFF)

    def test_repr_mentions_nonzero_terms(self):
        assert "x^3" in repr(ColumnPolynomial((0, 0, 0, 3)))
        assert repr(ColumnPolynomial((0, 0, 0, 0))).count("0") >= 1


class TestRingMultiplication:
    def test_identity(self):
        a = (0xDB, 0x13, 0x53, 0x45)
        assert ring_mul(a, ONE.coeffs) == a

    def test_fips_mix_column_example(self):
        # FIPS-197 §5.1.3 worked column: db 13 53 45 -> 8e 4d a1 bc.
        assert ring_mul((0xDB, 0x13, 0x53, 0x45), MIX_POLY.coeffs) == (
            0x8E, 0x4D, 0xA1, 0xBC,
        )

    def test_another_fips_column(self):
        # f2 0a 22 5c -> 9f dc 58 9d
        assert ring_mul((0xF2, 0x0A, 0x22, 0x5C), MIX_POLY.coeffs) == (
            0x9F, 0xDC, 0x58, 0x9D,
        )

    def test_all_equal_column_is_fixed_point(self):
        # When all bytes equal, MixColumn is the identity (coefficients
        # of c(x) sum to 01).
        assert ring_mul((0xAA,) * 4, MIX_POLY.coeffs) == (0xAA,) * 4

    def test_x_multiplication_rotates(self):
        x = (0, 1, 0, 0)
        assert ring_mul((0xDE, 0xAD, 0xBE, 0xEF), x) == (
            0xEF, 0xDE, 0xAD, 0xBE,
        )

    def test_commutative(self):
        a = (0x01, 0x02, 0x03, 0x04)
        b = (0x0E, 0x09, 0x0D, 0x0B)
        assert ring_mul(a, b) == ring_mul(b, a)

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            ring_mul((1, 2, 3), (1, 2, 3, 4))


class TestMixPolynomials:
    def test_c_times_d_is_one(self):
        assert MIX_POLY * INV_MIX_POLY == ONE

    def test_inverse_method_recovers_d(self):
        assert MIX_POLY.inverse() == INV_MIX_POLY

    def test_inverse_method_recovers_c(self):
        assert INV_MIX_POLY.inverse() == MIX_POLY

    def test_mix_poly_is_unit(self):
        assert MIX_POLY.is_unit()

    def test_zero_divisor_detected(self):
        # x^4 + 1 = (x + 1)^4 over GF(2), so (x + 1) is a zero
        # divisor: 01 + 01·x has no inverse.
        zero_divisor = ColumnPolynomial((1, 1, 0, 0))
        assert not zero_divisor.is_unit()
        with pytest.raises(ValueError):
            zero_divisor.inverse()

    def test_all_ones_is_zero_divisor(self):
        assert not ColumnPolynomial((1, 1, 1, 1)).is_unit()

    def test_mix_poly_coefficients(self):
        # Paper Fig. 7 / FIPS-197: c(x) = 03x^3 + 01x^2 + 01x + 02.
        assert MIX_POLY.coeffs == (0x02, 0x01, 0x01, 0x03)
        assert INV_MIX_POLY.coeffs == (0x0E, 0x09, 0x0D, 0x0B)

    def test_inverse_round_trip_random_units(self):
        # Any polynomial with an invertible circulant is a unit and
        # must round-trip.
        candidates = [
            (0x02, 0x01, 0x01, 0x03),
            (0x0E, 0x09, 0x0D, 0x0B),
            (0x01, 0x00, 0x00, 0x02),
            (0x05, 0x00, 0x04, 0x00),
        ]
        for coeffs in candidates:
            poly = ColumnPolynomial(coeffs)
            if poly.is_unit():
                assert poly.inverse() * poly == ONE
