"""Unit tests for GF(2^8) arithmetic."""

import pytest

from repro.gf.galois import (
    AES_MODULUS,
    gf_add,
    gf_div,
    gf_inv,
    gf_mul,
    gf_mul_slow,
    gf_pow,
    is_irreducible,
    xtime,
    xtime_chain_depth,
)


class TestAddition:
    def test_add_is_xor(self):
        assert gf_add(0x57, 0x83) == 0xD4  # FIPS-197 §4.1 example

    def test_add_identity(self):
        assert gf_add(0xAB, 0x00) == 0xAB

    def test_add_self_inverse(self):
        assert gf_add(0xAB, 0xAB) == 0x00

    def test_add_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            gf_add(256, 1)
        with pytest.raises(ValueError):
            gf_add(1, -1)


class TestXtime:
    def test_xtime_no_reduction(self):
        assert xtime(0x57) == 0xAE  # FIPS-197 §4.2.1 chain

    def test_xtime_with_reduction(self):
        assert xtime(0xAE) == 0x47
        assert xtime(0x47) == 0x8E
        assert xtime(0x8E) == 0x07

    def test_xtime_is_mul_by_two(self):
        for a in range(256):
            assert xtime(a) == gf_mul_slow(a, 0x02)

    def test_xtime_zero(self):
        assert xtime(0) == 0


class TestMultiplication:
    def test_fips_example(self):
        # FIPS-197 §4.2: 57 * 83 = c1
        assert gf_mul_slow(0x57, 0x83) == 0xC1
        assert gf_mul(0x57, 0x83) == 0xC1

    def test_fips_xtime_example(self):
        # FIPS-197 §4.2.1: 57 * 13 = fe
        assert gf_mul(0x57, 0x13) == 0xFE

    def test_table_matches_slow_exhaustive_row(self):
        # A full 256x256 sweep is done by the hypothesis suite on
        # random pairs; here pin a couple of complete rows.
        for b in range(256):
            assert gf_mul(0x57, b) == gf_mul_slow(0x57, b)
            assert gf_mul(0xFF, b) == gf_mul_slow(0xFF, b)

    def test_multiplicative_identity(self):
        for a in range(256):
            assert gf_mul(a, 1) == a

    def test_zero_annihilates(self):
        for a in range(0, 256, 17):
            assert gf_mul(a, 0) == 0
            assert gf_mul(0, a) == 0

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            gf_mul(300, 1)


class TestPowerAndInverse:
    def test_pow_zero_exponent(self):
        assert gf_pow(0x53, 0) == 1
        assert gf_pow(0x00, 0) == 1

    def test_pow_matches_repeated_mul(self):
        value = 1
        for exponent in range(10):
            assert gf_pow(0x03, exponent) == value
            value = gf_mul(value, 0x03)

    def test_pow_of_zero(self):
        assert gf_pow(0, 5) == 0

    def test_pow_rejects_negative(self):
        with pytest.raises(ValueError):
            gf_pow(2, -1)

    def test_inverse_round_trip(self):
        for a in range(1, 256):
            assert gf_mul(a, gf_inv(a)) == 1

    def test_inverse_of_zero_is_zero(self):
        # The Rijndael "patched" convention used by the S-box.
        assert gf_inv(0) == 0

    def test_known_inverse(self):
        # FIPS-197: inverse of 0x53 is 0xCA (S-box worked example).
        assert gf_inv(0x53) == 0xCA

    def test_division(self):
        assert gf_div(gf_mul(0x57, 0x83), 0x83) == 0x57

    def test_division_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            gf_div(1, 0)


class TestModulus:
    def test_aes_modulus_is_irreducible(self):
        assert is_irreducible(AES_MODULUS)

    def test_reducible_polynomial_rejected(self):
        # x^8 + 1 = (x+1)^8 over GF(2): reducible.
        assert not is_irreducible(0x101)

    def test_requires_degree_eight(self):
        with pytest.raises(ValueError):
            is_irreducible(0x0B)

    def test_field_has_no_zero_divisors(self):
        for a in range(1, 256, 7):
            for b in range(1, 256, 11):
                assert gf_mul(a, b) != 0


class TestXtimeChainDepth:
    def test_mul_by_two_is_one_level(self):
        assert xtime_chain_depth(0x02) == 1

    def test_mul_by_three(self):
        # x03 = x ^ 1: chain 1 + tree over 2 terms (1 level) = 2.
        assert xtime_chain_depth(0x03) == 2

    def test_mul_by_one_is_free_tree(self):
        assert xtime_chain_depth(0x01) == 0

    def test_inv_mix_coefficient_depth(self):
        # x0E (1110b): chain 3, tree over 3 terms = 2 -> 5.
        assert xtime_chain_depth(0x0E) == 5

    def test_inverse_coeffs_deeper_than_forward(self):
        forward = max(xtime_chain_depth(c) for c in (0x01, 0x02, 0x03))
        inverse = max(
            xtime_chain_depth(c) for c in (0x09, 0x0B, 0x0D, 0x0E)
        )
        assert inverse > forward

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            xtime_chain_depth(0)
