"""Tests for the mechanical reproduction-report generator."""


from repro.analysis.report_gen import generate_report

REPORT = generate_report(seu_injections=8, power_blocks=2)


class TestReportContent:
    def test_is_markdown_with_title(self):
        assert REPORT.startswith("# Reproduction report")

    def test_all_sections_present(self):
        for heading in ("## Table 1", "## Cycle-accurate latency",
                        "## Table 2", "## Combined-device slowdown",
                        "## Table 3", "## §6 width sweep",
                        "## Extensions"):
            assert heading in REPORT

    def test_every_check_passes(self):
        assert "FAIL" not in REPORT
        assert REPORT.count("PASS") >= 15

    def test_table2_rows_complete(self):
        table_lines = [ln for ln in REPORT.splitlines()
                       if ln.startswith("| ") and "|---" not in ln]
        designs = [ln for ln in table_lines
                   if any(d in ln for d in ("encrypt", "decrypt",
                                            "both"))]
        assert len(designs) >= 6

    def test_anchor_cells_shown(self):
        assert "2114/2114" in REPORT
        assert "4057/4057" in REPORT

    def test_knee_identified(self):
        assert "mixed-32-128-encrypt" in REPORT

    def test_extensions_measured(self):
        assert "nJ/block" in REPORT
        assert "undetected corruption" in REPORT
        assert "avalanche" in REPORT


class TestReportStability:
    def test_deterministic(self):
        again = generate_report(seu_injections=8, power_blocks=2)
        assert again == REPORT
