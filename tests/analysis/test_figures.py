"""Tests for the Figure 1-9 reproductions."""

from repro.analysis.figures import (
    ALL_FIGURES,
    fig1_state,
    fig2_schedule,
    fig3_kstran,
    fig4_byte_sub,
    fig5_sbox,
    fig6_shift_row,
    fig7_mix_column,
    fig8_architecture,
    fig9_top_level,
)
from repro.ip.control import Variant


class TestRegistry:
    def test_all_nine_figures(self):
        assert set(ALL_FIGURES) == {f"fig{i}" for i in range(1, 10)}

    def test_all_render_nonempty(self):
        for name, fn in ALL_FIGURES.items():
            text = fn()
            assert isinstance(text, str) and len(text) > 40, name


class TestContent:
    def test_fig1_shows_column_major_layout(self):
        text = fig1_state()
        # First row of the matrix: bytes 0, 4, 8, 12.
        assert "00 04 08 0c" in text

    def test_fig2_runs_ten_rounds(self):
        text = fig2_schedule()
        assert "round 10: add_key" in text
        assert text.count("mix_column") == 9  # last round skips it

    def test_fig3_shows_kstran_steps(self):
        text = fig3_kstran(0x09CF4F3C, 1)
        assert "cf4f3c09" in text  # rotated
        assert "8a84eb01" in text  # substituted
        assert "8b84eb01" in text  # after Rcon

    def test_fig4_uses_real_sbox_values(self):
        text = fig4_byte_sub()
        assert "S[00]=63" in text

    def test_fig5_is_full_sbox_grid(self):
        text = fig5_sbox()
        assert "63 7c 77 7b" in text  # first row
        assert "2048 bits" in text
        assert len([ln for ln in text.splitlines()
                    if ln and ln[1] == "x"]) >= 16

    def test_fig6_shows_rotation(self):
        text = fig6_shift_row()
        assert "05 09 0d 01" in text  # row 1 rotated left by 1

    def test_fig7_fips_worked_column(self):
        text = fig7_mix_column()
        assert "0x8e" in text and "0xbc" in text
        # Round trip back to the input column.
        assert "0xdb" in text

    def test_fig8_names_the_units(self):
        text = fig8_architecture()
        for token in ("sbox_f", "sbox_i", "key unit", "5 cycles/round"):
            assert token in text

    def test_fig9_includes_signal_table(self):
        text = fig9_top_level(Variant.BOTH)
        assert "Data_In" in text
        assert "dout" in text
        assert "262" in text

    def test_fig9_encrypt_variant(self):
        text = fig9_top_level(Variant.ENCRYPT)
        assert "enc/dec" not in text
