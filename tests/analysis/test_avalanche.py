"""Tests for the diffusion statistics."""


from repro.analysis.avalanche import (
    AvalancheReport,
    avalanche_effect,
    completeness_violations,
    diffusion_by_round,
    key_avalanche_effect,
    sac_matrix,
)


class TestAvalancheEffect:
    REPORT = avalanche_effect(samples=48, seed=10)

    def test_mean_near_half(self):
        assert 0.45 <= self.REPORT.mean_fraction <= 0.55

    def test_range_sane(self):
        assert 30 <= self.REPORT.min_flipped
        assert self.REPORT.max_flipped <= 98

    def test_render(self):
        assert "avalanche" in self.REPORT.render()

    def test_deterministic_given_seed(self):
        again = avalanche_effect(samples=48, seed=10)
        assert again == self.REPORT

    def test_key_avalanche_near_half(self):
        report = key_avalanche_effect(samples=32, seed=11)
        assert 0.45 <= report.mean_fraction <= 0.55


class TestSacMatrix:
    MATRIX = sac_matrix(samples_per_bit=10, seed=12,
                        input_bits=[0, 37, 127])

    def test_shape(self):
        assert len(self.MATRIX) == 3
        assert all(len(row) == 128 for row in self.MATRIX)

    def test_probabilities_in_range(self):
        for row in self.MATRIX:
            for p in row:
                assert 0.0 <= p <= 1.0

    def test_rows_average_near_half(self):
        for row in self.MATRIX:
            mean = sum(row) / len(row)
            assert 0.40 <= mean <= 0.60

    def test_no_stuck_output_bits(self):
        # With 10 samples x 3 rows = 30 trials, an output bit that
        # never flipped would be suspicious.
        combined = [sum(row[j] for row in self.MATRIX)
                    for j in range(128)]
        assert all(total > 0 for total in combined)


class TestDiffusionByRound:
    PROFILE = diffusion_by_round(in_bit=5, samples=12, seed=13)

    def test_round_zero_is_one_bit(self):
        # After the initial Add Key only the flipped bit differs.
        assert self.PROFILE[0] == 1.0

    def test_round_one_confined_to_one_column(self):
        # One S-box output difference spreads through one MixColumn:
        # at most 32 bits can differ.
        assert 1.0 < self.PROFILE[1] <= 32.0

    def test_full_diffusion_by_round_two(self):
        # ShiftRow scatters the column; MixColumn fills all four.
        assert self.PROFILE[2] > 40.0

    def test_steady_state_half(self):
        for value in self.PROFILE[3:]:
            assert 48.0 <= value <= 80.0

    def test_monotone_early_growth(self):
        assert self.PROFILE[0] < self.PROFILE[1] < self.PROFILE[2]


class TestCompleteness:
    def test_no_violations(self):
        assert completeness_violations(samples_per_bit=12, seed=14) == 0


class TestReportObject:
    def test_fraction(self):
        report = AvalancheReport(samples=1, mean_flipped=64.0,
                                 min_flipped=64, max_flipped=64)
        assert report.mean_fraction == 0.5
