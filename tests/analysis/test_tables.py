"""Tests for the table generators."""

from repro.analysis.tables import (
    PAPER_TABLE2,
    table1_text,
    table2_comparison,
    table2_text,
    table3_text,
)
from repro.ip.control import Variant


class TestTable1:
    def test_contains_every_signal(self):
        text = table1_text()
        for name in ("clk", "setup", "wr_data", "wr_key", "din",
                     "enc/dec", "data_ok", "dout"):
            assert name in text

    def test_variant_specific(self):
        assert "enc/dec" not in table1_text(Variant.ENCRYPT)


class TestTable2:
    def test_text_has_all_designs_and_families(self):
        text = table2_text()
        for token in ("Encrypt", "Decrypt", "Both", "Acex1K", "Cyclone"):
            assert token in text

    def test_comparison_rows_complete(self):
        rows = table2_comparison()
        assert len(rows) == 6
        keys = {(r["design"], r["family"]) for r in rows}
        assert keys == set(PAPER_TABLE2)

    def test_comparison_errors_within_tolerance(self):
        for row in table2_comparison():
            assert abs(row["lcs_err_pct"]) <= 3.0
            assert row["model_memory"] == row["paper_memory"]
            assert row["model_pins"] == row["paper_pins"]
            assert row["model_latency_ns"] == row["paper_latency_ns"]
            assert row["model_clk_ns"] == row["paper_clk_ns"]

    def test_paper_transcription_consistency(self):
        # Internal consistency of the transcribed table: latency =
        # 50 x clk everywhere.
        for lcs, mem, pins, latency, clk, mbps in PAPER_TABLE2.values():
            assert latency == 50 * clk
            assert pins in (261, 262)


class TestTable3:
    def test_rows_rendered(self):
        text = table3_text()
        for ref in ("[13]", "[14]", "[1]", "[15]"):
            assert ref in text

    def test_lost_cells_flagged(self):
        text = table3_text()
        assert "(lost)" in text

    def test_reported_zigiotto_numbers_shown(self):
        text = table3_text()
        assert "1965" in text
        assert "61.2" in text
