"""Tests for SEU fault injection (paper ref. [16])."""

import pytest

from repro.aes.cipher import AES128
from repro.analysis.seu import CampaignResult, inject_once, run_campaign

KEY = bytes(range(16))
BLOCK = bytes.fromhex("00112233445566778899aabbccddeeff")


class TestSingleInjection:
    def test_state_flip_corrupts_output(self):
        # A bit flipped in a live state word early in the run must
        # avalanche into a wrong ciphertext.
        result = inject_once(KEY, BLOCK, "aes_state_0", bit=7,
                             cycle_offset=2)
        assert result.outcome == "corrupted"

    def test_output_register_flip_after_use_masked(self):
        # The Out register is rewritten at the result edge; flipping
        # it mid-run leaves the final value intact.
        result = inject_once(KEY, BLOCK, "aes_out_0", bit=0,
                             cycle_offset=5)
        assert result.outcome == "masked"

    def test_consumed_buffer_flip_masked(self):
        # The Data_In buffer was already consumed at block start.
        result = inject_once(KEY, BLOCK, "aes_buf_0", bit=3,
                             cycle_offset=10)
        assert result.outcome == "masked"

    def test_key_register_flip_corrupts(self):
        # Work word 0 is consumed at each round's first ByteSub cycle;
        # inject right after an M cycle (offset 20 = round 4's M) so
        # the flip is live when round 5 reads it.
        result = inject_once(KEY, BLOCK, "aes_ksu_work_0", bit=31,
                             cycle_offset=20)
        assert result.outcome == "corrupted"

    def test_key_register_flip_after_consumption_masked(self):
        # ...whereas a flip just after the word was consumed gets
        # overwritten by the round commit and never reaches the data.
        result = inject_once(KEY, BLOCK, "aes_ksu_work_0", bit=31,
                             cycle_offset=7)
        assert result.outcome == "masked"

    def test_offset_validated(self):
        with pytest.raises(ValueError):
            inject_once(KEY, BLOCK, "aes_state_0", 0, cycle_offset=50)

    def test_unknown_register(self):
        with pytest.raises(KeyError):
            inject_once(KEY, BLOCK, "nope", 0, 0)

    def test_golden_model_agreement_without_fault(self):
        # Sanity: offset injection into a totally dead register
        # reproduces the golden ciphertext.
        result = inject_once(KEY, BLOCK, "aes_buf_dir", bit=0,
                             cycle_offset=20)
        assert result.outcome == "masked"
        assert AES128(KEY).encrypt_block(BLOCK)  # golden path runs


class TestCampaign:
    CAMPAIGN = run_campaign(40, seed=2003)

    def test_total(self):
        assert self.CAMPAIGN.total == 40

    def test_outcomes_partition(self):
        c = self.CAMPAIGN
        assert c.count("corrupted") + c.count("masked") + \
            c.count("hung") == c.total

    def test_some_faults_corrupt(self):
        # Most registers are live datapath state: a random campaign
        # must produce real corruptions.
        assert self.CAMPAIGN.count("corrupted") > 5

    def test_some_faults_masked(self):
        assert self.CAMPAIGN.count("masked") > 0

    def test_deterministic_given_seed(self):
        again = run_campaign(40, seed=2003)
        assert [i.outcome for i in again.injections] == \
            [i.outcome for i in self.CAMPAIGN.injections]

    def test_by_register_totals(self):
        table = self.CAMPAIGN.by_register()
        assert sum(hits for hits, _ in table.values()) == 40

    def test_render(self):
        text = self.CAMPAIGN.render()
        assert "corruption rate" in text
        assert "sensitivity" in text

    def test_targeted_campaign(self):
        result = run_campaign(10, seed=1, targets=["aes_state_0"])
        assert set(i.register for i in result.injections) == \
            {"aes_state_0"}

    def test_state_registers_highly_sensitive(self):
        result = run_campaign(
            20, seed=5,
            targets=["aes_state_0", "aes_state_1",
                     "aes_state_2", "aes_state_3"],
        )
        # In-flight state flips essentially always corrupt.
        assert result.corruption_rate > 0.9

    def test_validation(self):
        with pytest.raises(ValueError):
            run_campaign(0)
        with pytest.raises(ValueError):
            run_campaign(5, targets=["nope"])

    def test_empty_campaign_result(self):
        assert CampaignResult().corruption_rate == 0.0
