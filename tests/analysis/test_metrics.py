"""Tests for the performance metric arithmetic."""

import pytest

from repro.analysis.metrics import (
    clock_mhz,
    combined_slowdown,
    efficiency_mbps_per_kle,
    latency_ns,
    throughput_mbps,
)


class TestLatency:
    def test_paper_rows(self):
        assert latency_ns(50, 14) == 700
        assert latency_ns(50, 15) == 750
        assert latency_ns(50, 17) == 850
        assert latency_ns(50, 10) == 500

    def test_validation(self):
        with pytest.raises(ValueError):
            latency_ns(-1, 10)
        with pytest.raises(ValueError):
            latency_ns(10, 0)


class TestThroughput:
    def test_paper_definition(self):
        # "block size (128) divided by latency".
        assert throughput_mbps(700) == pytest.approx(182.857, abs=0.01)
        assert throughput_mbps(500) == 256.0
        assert throughput_mbps(650) == pytest.approx(196.92, abs=0.01)

    def test_custom_block(self):
        assert throughput_mbps(1000, block_bits=256) == 256.0

    def test_validation(self):
        with pytest.raises(ValueError):
            throughput_mbps(0)


class TestClock:
    def test_mhz(self):
        assert clock_mhz(14) == pytest.approx(71.43, abs=0.01)
        assert clock_mhz(10) == 100.0

    def test_validation(self):
        with pytest.raises(ValueError):
            clock_mhz(0)


class TestEfficiency:
    def test_per_kle(self):
        assert efficiency_mbps_per_kle(200, 2000) == 100.0

    def test_validation(self):
        with pytest.raises(ValueError):
            efficiency_mbps_per_kle(100, 0)


class TestCombinedSlowdown:
    def test_paper_claim(self):
        # Acex: enc 182.9 -> both 150.6: ~18 %; Cyclone 256 -> 197:
        # ~23 %.  The paper summarizes this as "around 22%".
        acex = combined_slowdown(182.9, 150.6)
        cyclone = combined_slowdown(256.0, 196.9)
        assert 0.15 < acex < 0.25
        assert 0.20 < cyclone < 0.25

    def test_validation(self):
        with pytest.raises(ValueError):
            combined_slowdown(0, 1)
