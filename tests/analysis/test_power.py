"""Tests for the toggle-based power model (the paper's future work)."""

import pytest

from repro.analysis.power import (
    ACEX_ENERGY,
    CYCLONE_ENERGY,
    ENERGY_MODELS,
    ROM_READS_PER_BLOCK,
    measure_power,
)
from repro.ip.control import Variant
from tests.conftest import random_block, random_key


def blocks(rng, n=3):
    return [random_block(rng) for _ in range(n)]


class TestEnergyModels:
    def test_voltage_scaling(self):
        # Cyclone runs at 1.5 V vs Acex 2.5 V: every coefficient must
        # be strictly smaller.
        assert CYCLONE_ENERGY.pj_per_ff_toggle < \
            ACEX_ENERGY.pj_per_ff_toggle
        assert CYCLONE_ENERGY.pj_per_rom_read < \
            ACEX_ENERGY.pj_per_rom_read

    def test_rom_reads_per_block(self):
        # 4 words x 10 rounds + 10 KStran reads.
        assert ROM_READS_PER_BLOCK == 50

    def test_registry(self):
        assert set(ENERGY_MODELS) == {"Acex1K", "Cyclone"}


class TestMeasurement:
    def test_basic_report(self, rng):
        report = measure_power(blocks(rng), random_key(rng))
        assert report.blocks == 3
        assert report.register_toggles > 0
        assert report.dynamic_mw > 0
        assert report.energy_per_block_nj > 0
        assert report.rom_reads == 3 * ROM_READS_PER_BLOCK

    def test_clock_defaults_to_table2(self, rng):
        report = measure_power(blocks(rng), random_key(rng),
                               variant=Variant.ENCRYPT,
                               family="Acex1K")
        assert report.clock_ns == 14

    def test_explicit_clock_honored(self, rng):
        report = measure_power(blocks(rng), random_key(rng),
                               clock_ns=20.0)
        assert report.clock_ns == 20.0

    def test_breakdown_sums_to_total(self, rng):
        report = measure_power(blocks(rng), random_key(rng))
        assert sum(report.breakdown_pj.values()) == \
            pytest.approx(report.energy_pj)

    def test_render_mentions_mw(self, rng):
        text = measure_power(blocks(rng), random_key(rng)).render()
        assert "mW" in text and "nJ" in text

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            measure_power(blocks(rng), random_key(rng),
                          direction="sideways")
        with pytest.raises(KeyError):
            measure_power(blocks(rng), random_key(rng),
                          family="Stratix99")


class TestRelativeResults:
    """Absolute mW are indicative; these relations are structural."""

    def test_cyclone_lower_energy_than_acex(self, rng):
        key = random_key(rng)
        data = blocks(rng)
        acex = measure_power(data, key, family="Acex1K")
        cyc = measure_power(data, key, family="Cyclone")
        assert cyc.energy_per_block_nj < acex.energy_per_block_nj

    def test_more_blocks_more_energy(self, rng):
        key = random_key(rng)
        few = measure_power(blocks(rng, 2), key)
        many = measure_power(blocks(rng, 6), key)
        assert many.energy_pj > few.energy_pj
        # But per-block energy is roughly flat (within 50 %).
        ratio = many.energy_per_block_nj / few.energy_per_block_nj
        assert 0.5 < ratio < 1.5

    def test_decrypt_energy_comparable_to_encrypt(self, rng):
        key = random_key(rng)
        data = blocks(rng)
        enc = measure_power(data, key, variant=Variant.BOTH,
                            direction="encrypt")
        dec = measure_power(data, key, variant=Variant.BOTH,
                            direction="decrypt")
        ratio = dec.energy_per_block_nj / enc.energy_per_block_nj
        assert 0.6 < ratio < 1.6
