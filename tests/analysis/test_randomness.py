"""Tests for the keystream randomness battery."""

import pytest

from repro.aes.modes import ctr_keystream, ofb_xcrypt
from repro.analysis.randomness import (
    block_frequency_test,
    keystream_battery,
    monobit_test,
    render_battery,
    runs_test,
)

KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
STREAM = ctr_keystream(KEY, bytes(8), 64)  # 1024 bytes / 8192 bits


class TestOnRealKeystream:
    def test_monobit_passes(self):
        assert monobit_test(STREAM).passed

    def test_runs_passes(self):
        assert runs_test(STREAM).passed

    def test_block_frequency_passes(self):
        assert block_frequency_test(STREAM).passed

    def test_full_battery(self):
        outcomes = keystream_battery(STREAM)
        assert len(outcomes) == 3
        assert all(o.passed for o in outcomes), \
            render_battery(outcomes)

    def test_ofb_keystream_passes(self):
        stream = ofb_xcrypt(KEY, bytes(16), bytes(1024))
        assert all(o.passed for o in keystream_battery(stream))

    def test_p_values_in_range(self):
        for outcome in keystream_battery(STREAM):
            assert 0.0 <= outcome.p_value <= 1.0


class TestOnPathologicalData:
    def test_all_zeros_fails_monobit(self):
        assert not monobit_test(bytes(256)).passed

    def test_all_ones_fails_monobit(self):
        assert not monobit_test(bytes([0xFF] * 256)).passed

    def test_alternating_bits_fail_runs(self):
        # 0101... balances perfectly but runs are maximal.
        data = bytes([0x55] * 256)
        assert monobit_test(data).passed
        assert not runs_test(data).passed

    def test_block_bias_detected(self):
        # Half the stream all-ones, half all-zeros: monobit balances,
        # block frequency catches it.
        data = bytes([0xFF] * 128) + bytes(128)
        assert monobit_test(data).passed
        assert not block_frequency_test(data).passed

    def test_repeated_ecb_blocks_fail(self):
        # A constant-plaintext ECB stream repeats one block: detected
        # by the runs structure (the classic ECB failure mode).
        from repro.aes.modes import ecb_encrypt

        stream = ecb_encrypt(KEY, bytes(1024))
        outcomes = keystream_battery(stream)
        assert not all(o.passed for o in outcomes)


class TestValidation:
    def test_minimum_lengths(self):
        with pytest.raises(ValueError):
            monobit_test(bytes(4))
        with pytest.raises(ValueError):
            runs_test(bytes(4))
        with pytest.raises(ValueError):
            block_frequency_test(bytes(16))

    def test_render(self):
        text = render_battery(keystream_battery(STREAM))
        assert "monobit" in text and "pass" in text
