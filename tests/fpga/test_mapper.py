"""Tests for technology mapping and memory-block allocation."""

import pytest

from repro.fpga.devices import device
from repro.fpga.mapper import MappingError, map_netlist, roms_fit_memory
from repro.fpga.netlist import Netlist

ACEX = device("Acex1K")
CYCLONE = device("Cyclone")


def sbox_netlist(count: int, group: str = "sbox") -> Netlist:
    nl = Netlist("t")
    nl.add_rom(group, 256, 8, count)
    return nl


class TestRomPlacement:
    def test_async_design_uses_acex_eabs(self):
        nl = sbox_netlist(8)
        result = map_netlist(nl, ACEX)
        assert result.memory_bits == 16384
        assert not result.roms_in_logic

    def test_async_design_cannot_use_cyclone_m4k(self):
        assert not roms_fit_memory(sbox_netlist(1), CYCLONE,
                                   sync_design=False)
        result = map_netlist(sbox_netlist(8), CYCLONE)
        assert result.memory_bits == 0
        assert result.roms_in_logic
        assert result.logic_elements > 8 * 200

    def test_sync_design_uses_cyclone_m4k(self):
        result = map_netlist(sbox_netlist(8), CYCLONE, sync_design=True)
        assert result.memory_bits == 16384
        assert not result.roms_in_logic

    def test_romless_netlist(self):
        nl = Netlist("t")
        nl.add_luts("g", 10)
        result = map_netlist(nl, CYCLONE)
        assert not result.roms_in_logic
        assert result.memory_bits == 0


class TestBlockAllocation:
    def test_simultaneous_tables_get_own_blocks(self):
        # 8 same-group S-boxes: all read in the same cycle -> 8 EABs.
        result = map_netlist(sbox_netlist(8), ACEX)
        assert result.memory_blocks == 8

    def test_direction_pairs_share_blocks(self):
        nl = Netlist("t")
        nl.add_rom("sbox_data_enc", 256, 8, 4)
        nl.add_rom("sbox_data_dec", 256, 8, 4)
        result = map_netlist(nl, ACEX)
        # 4 pairs, each fitting one 4096-bit EAB as a 512x8 table.
        assert result.memory_blocks == 4
        assert result.memory_bits == 16384

    def test_paper_both_device_fits_twelve_eabs(self):
        nl = Netlist("t")
        nl.add_rom("sbox_data_enc", 256, 8, 4)
        nl.add_rom("sbox_data_dec", 256, 8, 4)
        nl.add_rom("sbox_kstran_enc", 256, 8, 4)
        nl.add_rom("sbox_kstran_dec", 256, 8, 4)
        result = map_netlist(nl, ACEX)
        assert result.memory_bits == 32768
        assert result.memory_blocks == 8 <= 12

    def test_unpaired_leftovers_counted(self):
        nl = Netlist("t")
        nl.add_rom("sbox_data_enc", 256, 8, 4)
        nl.add_rom("sbox_data_dec", 256, 8, 2)
        result = map_netlist(nl, ACEX)
        assert result.memory_blocks == 2 + 2  # 2 pairs + 2 singles

    def test_over_capacity_raises(self):
        nl = sbox_netlist(20)  # 20 single-port tables > 12 EABs
        with pytest.raises(MappingError):
            map_netlist(nl, ACEX, strict=True)
        # Non-strict reports anyway.
        result = map_netlist(nl, ACEX, strict=False)
        assert result.memory_blocks == 20


class TestLogicMapping:
    def test_unpacked_ffs_cost_les(self):
        nl = Netlist("t")
        nl.add_ff("regs", 100, packed=False)
        assert map_netlist(nl, ACEX).logic_elements == 100

    def test_packed_ffs_are_free(self):
        nl = Netlist("t")
        nl.add_ff("regs", 100, packed=True)
        assert map_netlist(nl, ACEX).logic_elements == 0

    def test_luts_scaled_by_calibration(self):
        from repro.fpga.calibration import LOGIC_FIT

        nl = Netlist("t")
        nl.add_luts("g", 1000)
        expected = -(-1000 * LOGIC_FIT // 1)  # ceil
        assert map_netlist(nl, ACEX).logic_elements == expected

    def test_le_capacity_enforced(self):
        nl = Netlist("t")
        nl.add_ff("regs", 5000, packed=False)
        with pytest.raises(MappingError):
            map_netlist(nl, ACEX)

    def test_pin_capacity_enforced(self):
        nl = Netlist("t")
        nl.add_pins("pins", 400)
        with pytest.raises(MappingError):
            map_netlist(nl, ACEX)
        assert map_netlist(nl, ACEX, strict=False).pins == 400
