"""Tests for the structurally-derived primitive cost formulas."""

import pytest

from repro.fpga.primitives import (
    inv_mix_column_terms,
    inv_mix_network_luts,
    mix_column_terms,
    mix_network_luts,
    mix_stage_depth,
    mux_luts,
    rom_as_luts,
    xor_network_depth,
    xor_tree_luts,
)


class TestXorTrees:
    def test_trivial_cases(self):
        assert xor_tree_luts(0) == 0
        assert xor_tree_luts(1) == 0

    def test_one_lut_up_to_four(self):
        assert xor_tree_luts(2) == 1
        assert xor_tree_luts(4) == 1

    def test_growth(self):
        assert xor_tree_luts(5) == 2
        assert xor_tree_luts(7) == 2
        assert xor_tree_luts(8) == 3
        assert xor_tree_luts(10) == 3

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            xor_tree_luts(-1)

    def test_depth(self):
        assert xor_network_depth(1) == 0
        assert xor_network_depth(4) == 1
        assert xor_network_depth(5) == 2
        assert xor_network_depth(16) == 2
        assert xor_network_depth(17) == 3


class TestMux:
    def test_two_way(self):
        assert mux_luts(128, 2) == 128

    def test_one_way_is_wire(self):
        assert mux_luts(128, 1) == 0

    def test_four_way(self):
        assert mux_luts(32, 4) == 96

    def test_validation(self):
        with pytest.raises(ValueError):
            mux_luts(-1, 2)
        with pytest.raises(ValueError):
            mux_luts(8, 0)


class TestLinearMapTerms:
    def test_mix_column_term_range(self):
        terms = mix_column_terms()
        assert len(terms) == 32
        assert min(terms) == 5
        assert max(terms) == 7

    def test_inv_mix_column_terms_heavier(self):
        fwd, inv = mix_column_terms(), inv_mix_column_terms()
        assert min(inv) >= 11
        assert sum(inv) > 2 * sum(fwd)

    def test_terms_match_linearity_probe(self):
        # Independent re-derivation for one output bit.
        from repro.ip.datapath import mix_column_word

        count_bit0 = sum(
            (mix_column_word(1 << j) >> 0) & 1 for j in range(32)
        )
        assert mix_column_terms()[0] == count_bit0


class TestNetworkCosts:
    def test_mix_network_value(self):
        # 4 columns x 76 LUTs (AddKey merged) = 304.
        assert mix_network_luts() == 304

    def test_inv_mix_flat_value(self):
        assert inv_mix_network_luts(shared=False) == 688

    def test_inv_mix_shared_form(self):
        # Correction form: forward network + 16 LUTs/column.
        assert inv_mix_network_luts(shared=True) == 304 + 64

    def test_shared_form_much_cheaper(self):
        assert inv_mix_network_luts(shared=True) < \
            inv_mix_network_luts(shared=False)

    def test_single_column(self):
        assert mix_network_luts(columns=1) * 4 == mix_network_luts()

    def test_without_add_key(self):
        assert mix_network_luts(add_key=False) < mix_network_luts()


class TestRomAsLuts:
    def test_sbox_cost(self):
        # 31 LUTs per output bit x 8 bits = 248; the paper's observed
        # Cyclone delta is 243 per S-box (within 2 %).
        assert rom_as_luts(256, 8) == 248
        paper_delta_per_sbox = (4057 - 2114) / 8
        assert abs(rom_as_luts(256, 8) - paper_delta_per_sbox) \
            / paper_delta_per_sbox < 0.03

    def test_small_rom(self):
        assert rom_as_luts(16, 8) == 8  # one leaf LUT per bit

    def test_validation(self):
        with pytest.raises(ValueError):
            rom_as_luts(100, 8)  # not a power of two
        with pytest.raises(ValueError):
            rom_as_luts(8, 8)  # under a LUT's reach


class TestDepths:
    def test_forward_depth(self):
        # xtime level + 2 XOR-tree levels (8 terms incl. key).
        assert mix_stage_depth(inverse=False) == 3

    def test_inverse_shared_depth(self):
        assert mix_stage_depth(inverse=True) == 4

    def test_inverse_flat_depth(self):
        assert mix_stage_depth(inverse=True, shared=False) >= 4

    def test_inverse_deeper_than_forward(self):
        # The structural reason decrypt clocks at 15 ns vs 14 ns.
        assert mix_stage_depth(True) > mix_stage_depth(False)
