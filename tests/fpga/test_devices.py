"""Tests for the device database."""

import pytest

from repro.fpga.devices import DEVICES, Device, MemoryBlockKind, device


class TestPaperDevices:
    def test_ep1k100_capacities(self):
        dev = device("EP1K100FC484-1")
        assert dev.logic_elements == 4992
        assert dev.memory_bits == 49152  # 12 EABs x 4096 bits
        assert dev.user_ios == 333
        assert dev.supports_async_rom

    def test_ep1c20_capacities(self):
        dev = device("EP1C20F400C6")
        assert dev.logic_elements == 20060
        assert dev.memory_bits == 64 * 4608
        assert dev.user_ios == 301
        assert not dev.supports_async_rom  # M4K is synchronous-only

    def test_family_alias_lookup(self):
        assert device("Acex1K").name == "EP1K100FC484-1"
        assert device("cyclone").name == "EP1C20F400C6"

    def test_unknown_device(self):
        with pytest.raises(KeyError):
            device("EP999")

    def test_baseline_families_present(self):
        for family in ("Flex10KA", "Apex20K", "Apex20KE"):
            assert device(family).family == family


class TestOccupancyMath:
    """The Table 2 percentage columns fall out of the capacities."""

    def test_acex_memory_percentages(self):
        dev = device("Acex1K")
        assert round(100 * 16384 / dev.memory_bits) == 33
        assert round(100 * 32768 / dev.memory_bits) == 67  # paper: 66

    def test_acex_le_percentages(self):
        dev = device("Acex1K")
        assert round(100 * 2114 / dev.logic_elements) == 42
        assert round(100 * 2217 / dev.logic_elements) == 44
        assert round(100 * 3222 / dev.logic_elements) == 65  # paper: 64

    def test_cyclone_le_percentages(self):
        dev = device("Cyclone")
        assert round(100 * 4057 / dev.logic_elements) == 20
        assert round(100 * 7034 / dev.logic_elements) == 35

    def test_pin_percentages(self):
        acex, cyc = device("Acex1K"), device("Cyclone")
        assert round(100 * 261 / acex.user_ios) == 78
        assert round(100 * 261 / cyc.user_ios) == 87

    def test_occupancy_helper(self):
        dev = device("Acex1K")
        occ = dev.occupancy(2114, 16384, 261)
        assert occ["logic"] == pytest.approx(2114 / 4992)
        assert occ["memory"] == pytest.approx(1 / 3)
        assert occ["pins"] == pytest.approx(261 / 333)

    def test_memoryless_device_occupancy(self):
        dev = Device(
            name="x", family="x", logic_elements=100, memory=None,
            user_ios=10, t_level=1.0, t_overhead=1.0, t_rom_access=1.0,
        )
        assert dev.occupancy(10, 0, 5)["memory"] == 0.0
        assert not dev.supports_async_rom


class TestMemoryBlockKind:
    def test_total_bits(self):
        assert MemoryBlockKind("EAB", 4096, 12, True).total_bits == 49152

    def test_devices_registry_complete(self):
        assert len(DEVICES) >= 5
        assert all(isinstance(d, Device) for d in DEVICES.values())
