"""Tests for the architecture -> netlist expansion."""


from repro.arch.spec import ArchitectureSpec, paper_spec
from repro.fpga.aes_netlists import build_netlist
from repro.ip.control import Variant


class TestPaperDesignPoints:
    def test_encrypt_memory_inventory(self):
        nl = build_netlist(paper_spec(Variant.ENCRYPT))
        # 4 data + 4 KStran S-boxes = 16384 bits (Table 2).
        assert nl.total_rom_bits == 16384

    def test_decrypt_memory_inventory(self):
        nl = build_netlist(paper_spec(Variant.DECRYPT))
        assert nl.total_rom_bits == 16384

    def test_both_memory_doubles(self):
        # The paper combines the two designs, keeping each KStran bank
        # (Table 2: 32768 bits).
        nl = build_netlist(paper_spec(Variant.BOTH))
        assert nl.total_rom_bits == 32768

    def test_both_roms_are_direction_tagged(self):
        nl = build_netlist(paper_spec(Variant.BOTH))
        groups = {g for g, _ in nl.rom_blocks()}
        assert groups == {
            "sbox_data_enc", "sbox_data_dec",
            "sbox_kstran_enc", "sbox_kstran_dec",
        }

    def test_pins(self):
        assert build_netlist(paper_spec(Variant.ENCRYPT)).total_pins == 261
        assert build_netlist(paper_spec(Variant.BOTH)).total_pins == 262

    def test_decrypt_adds_only_correction_logic(self):
        enc = build_netlist(paper_spec(Variant.ENCRYPT))
        dec = build_netlist(paper_spec(Variant.DECRYPT))
        delta = dec.total_luts - enc.total_luts
        # InvMixColumn correction layer: 64 LUTs (shared form).
        assert delta == 64

    def test_both_adds_selection_layer(self):
        dec = build_netlist(paper_spec(Variant.DECRYPT))
        both = build_netlist(paper_spec(Variant.BOTH))
        assert both.group("both_select").luts > 500
        assert both.total_luts > dec.total_luts

    def test_register_inventory_stable(self):
        nl = build_netlist(paper_spec(Variant.ENCRYPT))
        # Data_In + Out(+strobe) + key0 + key_last unpacked.
        assert nl.total_ff_unpacked == 514
        # state + work + build + rcon + control packed.
        assert nl.total_ff - nl.total_ff_unpacked == 128 * 3 + 8 + 26


class TestParameterizedDesigns:
    def test_sub_width_scales_data_sboxes(self):
        for width, sboxes in ((8, 1), (16, 2), (32, 4), (128, 16)):
            spec = ArchitectureSpec("t", Variant.ENCRYPT,
                                    sub_width=width, wide_width=128)
            nl = build_netlist(spec)
            data_bits = sum(
                rom.bits for g, rom in nl.rom_blocks()
                if g.startswith("sbox_data")
            )
            assert data_bits == sboxes * 2048

    def test_kstran_bank_fixed_at_8k(self):
        # §6: "the 8 k used in KStran will not decrease".
        for width in (8, 16, 32, 128):
            spec = ArchitectureSpec("t", Variant.ENCRYPT,
                                    sub_width=width, wide_width=128)
            nl = build_netlist(spec)
            kstran_bits = sum(
                rom.bits for g, rom in nl.rom_blocks()
                if g.startswith("sbox_kstran")
            )
            assert kstran_bits == 8192

    def test_precomputed_keys_use_ram_not_kstran(self):
        spec = ArchitectureSpec("t", Variant.ENCRYPT, sub_width=128,
                                wide_width=128,
                                key_schedule="precomputed")
        nl = build_netlist(spec)
        groups = {g for g, _ in nl.rom_blocks()}
        assert "key_ram" in groups
        assert not any(g.startswith("sbox_kstran") for g in groups)

    def test_narrow_wide_stage_smaller_mix(self):
        wide = build_netlist(ArchitectureSpec(
            "w", Variant.ENCRYPT, sub_width=32, wide_width=128))
        narrow = build_netlist(ArchitectureSpec(
            "n", Variant.ENCRYPT, sub_width=32, wide_width=32))
        assert narrow.group("mix_enc").luts < \
            wide.group("mix_enc").luts

    def test_unrolled_multiplies_datapath(self):
        spec = ArchitectureSpec("t", Variant.ENCRYPT, sub_width=128,
                                wide_width=128,
                                key_schedule="precomputed",
                                unrolled_rounds=10, pipelined=True)
        nl = build_netlist(spec)
        single = build_netlist(ArchitectureSpec(
            "s", Variant.ENCRYPT, sub_width=128, wide_width=128,
            key_schedule="precomputed"))
        assert nl.group("mix_enc").luts == \
            10 * single.group("mix_enc").luts

    def test_sync_rom_adds_pipeline_registers(self):
        spec = paper_spec(Variant.ENCRYPT, sync_rom=True)
        nl = build_netlist(spec)
        assert nl.group("sbox_pipeline").ff_unpacked == 32
