"""Tests keeping the calibration constants honest and in sync."""


from repro.arch.spec import paper_spec
from repro.fpga import calibration
from repro.fpga.aes_netlists import build_netlist
from repro.fpga.primitives import mix_network_luts, rom_as_luts
from repro.ip.control import Variant


class TestFitValues:
    def test_logic_fit_is_plausible_inflation(self):
        # Synthesized LEs exceed the structural LUT minimum; 1.2-1.8x
        # is the plausible band for a 2002 flow on XOR-heavy logic.
        assert 1.2 <= calibration.LOGIC_FIT <= 1.8

    def test_rom_lut_fit_near_unity(self):
        # Quartus' ROM-to-LUT decomposition tracks the analytic
        # Shannon expansion closely.
        assert 0.9 <= calibration.ROM_LUT_FIT <= 1.1

    def test_tolerance_is_tight(self):
        assert calibration.LC_TOLERANCE <= 0.05


class TestInventorySync:
    """The constants mirrored in calibration.py must match what the
    netlist builder actually emits — otherwise the anchor drifts."""

    def test_encrypt_unpacked_ff_matches_builder(self):
        nl = build_netlist(paper_spec(Variant.ENCRYPT))
        assert nl.total_ff_unpacked == calibration.BASE_UNPACKED_FF

    def test_encrypt_luts_match_builder(self):
        nl = build_netlist(paper_spec(Variant.ENCRYPT))
        expected = calibration.BASE_LUTS + calibration.ENCRYPT_MIX_LUTS
        assert nl.total_luts == expected

    def test_encrypt_mix_luts_formula(self):
        assert calibration.ENCRYPT_MIX_LUTS == mix_network_luts() + 128


class TestAnchorArithmetic:
    def test_logic_fit_reproduces_acex_anchor(self):
        structural = calibration.BASE_LUTS + calibration.ENCRYPT_MIX_LUTS
        predicted = (calibration.BASE_UNPACKED_FF
                     + calibration.LOGIC_FIT * structural)
        assert round(predicted) == calibration.ANCHOR_ACEX_ENCRYPT_LCS

    def test_rom_fit_reproduces_cyclone_anchor(self):
        per_sbox = calibration.ROM_LUT_FIT * rom_as_luts(256, 8)
        predicted = calibration.ANCHOR_ACEX_ENCRYPT_LCS + 8 * per_sbox
        assert abs(predicted
                   - calibration.ANCHOR_CYCLONE_ENCRYPT_LCS) < 1.0
