"""THE reproduction test: every cell of the paper's Table 2.

LC counts are held to ±3 % (two cells are calibration anchors and
exact); memory bits, pins, latency and clock are exact; throughput to
within 1 Mbps of the paper's block-size/latency definition.
"""

import pytest

from repro.analysis.tables import PAPER_TABLE2, PAPER_TABLE2_PERCENT
from repro.fpga.calibration import LC_TOLERANCE
from repro.fpga.report import render_table2
from repro.fpga.synthesis import compile_table2

REPORTS = {
    (r.spec.variant.value, r.device.family): r for r in compile_table2()
}
CELLS = sorted(PAPER_TABLE2)


@pytest.mark.parametrize("key", CELLS, ids=["-".join(k) for k in CELLS])
class TestTable2Cells:
    def test_logic_cells(self, key):
        paper = PAPER_TABLE2[key][0]
        model = REPORTS[key].logic_elements
        assert abs(model - paper) / paper <= LC_TOLERANCE, \
            f"{key}: {model} vs paper {paper}"

    def test_memory_bits_exact(self, key):
        assert REPORTS[key].memory_bits == PAPER_TABLE2[key][1]

    def test_pins_exact(self, key):
        assert REPORTS[key].pins == PAPER_TABLE2[key][2]

    def test_latency_exact(self, key):
        assert REPORTS[key].latency_ns == PAPER_TABLE2[key][3]

    def test_clock_exact(self, key):
        assert REPORTS[key].clock_ns == PAPER_TABLE2[key][4]

    def test_throughput_within_one_mbps(self, key):
        paper = PAPER_TABLE2[key][5]
        assert abs(REPORTS[key].throughput_mbps - paper) <= 1.0

    def test_occupancy_percentages(self, key):
        lc_pct, mem_pct, pin_pct = PAPER_TABLE2_PERCENT[key]
        report = REPORTS[key]
        assert abs(report.logic_pct - lc_pct) <= 3.5
        assert abs(report.memory_pct - mem_pct) <= 1.5
        assert abs(report.pin_pct - pin_pct) <= 1.5


class TestAnchors:
    """Two cells are calibration anchors and must be exact."""

    def test_acex_encrypt_exact(self):
        assert REPORTS[("encrypt", "Acex1K")].logic_elements == 2114

    def test_cyclone_encrypt_exact(self):
        assert REPORTS[("encrypt", "Cyclone")].logic_elements == 4057


class TestStructuralClaims:
    def test_combined_device_slowdown_about_22_percent(self):
        """Paper §5: 'the performance drops around 22% when the
        encrypt and decrypt run at the same device'."""
        from repro.analysis.metrics import combined_slowdown

        for family in ("Acex1K", "Cyclone"):
            enc = REPORTS[("encrypt", family)].throughput_mbps
            both = REPORTS[("both", family)].throughput_mbps
            drop = combined_slowdown(enc, both)
            assert 0.17 <= drop <= 0.25, (family, drop)

    def test_cyclone_has_no_memory_anywhere(self):
        for variant in ("encrypt", "decrypt", "both"):
            assert REPORTS[(variant, "Cyclone")].memory_bits == 0

    def test_cyclone_le_penalty_is_sbox_count(self):
        """The Acex->Cyclone LE delta divides by the S-box count to
        roughly one constant (ROMs pushed into logic)."""
        per_sbox = []
        for variant, sboxes in (("encrypt", 8), ("decrypt", 8),
                                ("both", 16)):
            delta = (REPORTS[(variant, "Cyclone")].logic_elements
                     - REPORTS[(variant, "Acex1K")].logic_elements)
            per_sbox.append(delta / sboxes)
        assert max(per_sbox) - min(per_sbox) < 10

    def test_decrypt_slower_and_bigger_than_encrypt(self):
        for family in ("Acex1K", "Cyclone"):
            enc = REPORTS[("encrypt", family)]
            dec = REPORTS[("decrypt", family)]
            assert dec.clock_ns > enc.clock_ns
            assert dec.logic_elements > enc.logic_elements

    def test_both_cheaper_than_two_devices(self):
        """§4: 'the area increases with the both devices together' —
        but the combined device is cheaper than two separate ones."""
        for family in ("Acex1K", "Cyclone"):
            enc = REPORTS[("encrypt", family)].logic_elements
            dec = REPORTS[("decrypt", family)].logic_elements
            both = REPORTS[("both", family)].logic_elements
            assert max(enc, dec) < both < enc + dec

    def test_all_designs_fit_their_devices(self):
        assert all(r.fits for r in REPORTS.values())

    def test_render_contains_every_lc_value(self):
        text = render_table2(list(REPORTS.values()))
        for report in REPORTS.values():
            assert str(report.logic_elements) in text
