"""Tests for fit reports and the Table 2 renderer."""

import pytest

from repro.arch.spec import ArchitectureSpec, paper_spec
from repro.fpga.report import render_table2
from repro.fpga.synthesis import compile_spec
from repro.ip.control import Variant

ENC = compile_spec(paper_spec(Variant.ENCRYPT), "Acex1K")


class TestDerivedFields:
    def test_latency_product(self):
        assert ENC.latency_ns == ENC.latency_cycles * ENC.clock_ns

    def test_throughput_definition(self):
        assert ENC.throughput_mbps == pytest.approx(
            128 * 1000 / ENC.latency_ns
        )

    def test_percentages(self):
        assert ENC.logic_pct == pytest.approx(100 * 2114 / 4992)
        assert ENC.memory_pct == pytest.approx(100 / 3)
        assert ENC.pin_pct == pytest.approx(100 * 261 / 333)

    def test_efficiency(self):
        assert ENC.efficiency_mbps_per_kle == pytest.approx(
            ENC.throughput_mbps / 2.114, rel=1e-6
        )

    def test_pipelined_throughput_uses_block_period(self):
        spec = ArchitectureSpec(
            "p", Variant.ENCRYPT, sub_width=128, wide_width=128,
            key_schedule="precomputed", unrolled_rounds=10,
            pipelined=True,
        )
        report = compile_spec(spec, "Apex20KE", strict=False)
        # One block per clock at the device's period.
        assert report.throughput_mbps == pytest.approx(
            128 * 1000 / report.clock_ns
        )


class TestRowStrings:
    def test_row_cells(self):
        row = ENC.row()
        assert row["LC's"] == "2114/42%"
        assert row["Memory"] == "16384/33%"
        assert row["Pins"] == "261/78%"
        assert row["Latency"] == "700 ns"
        assert row["Clk"] == "14 ns"
        assert row["Throughput"] == "183 Mbps"

    def test_render_names_device_and_critical_path(self):
        text = ENC.render()
        assert "EP1K100FC484-1" in text
        assert ENC.critical_path in text


class TestTable2Renderer:
    def test_missing_cells_render_dash(self):
        text = render_table2([ENC])  # only one of six cells
        assert "-" in text
        assert "2114/42%" in text

    def test_custom_family_list(self):
        text = render_table2([ENC], families=("Acex1K",))
        assert "Cyclone" not in text

    def test_full_grid(self):
        from repro.fpga.synthesis import compile_table2

        text = render_table2(compile_table2())
        assert text.count("Mbps") == 6
        for label in ("Encrypt", "Decrypt", "Both"):
            assert label in text
