"""Tests for the named-critical-path timing model."""

import pytest

from repro.arch.spec import paper_spec
from repro.fpga.devices import device
from repro.fpga.timing import analyze, key_path, mix_path, round_clock, \
    sbox_path
from repro.ip.control import Variant

ACEX = device("Acex1K")
CYCLONE = device("Cyclone")


class TestRounding:
    def test_half_up(self):
        assert round_clock(13.5) == 14
        assert round_clock(13.49) == 13
        assert round_clock(17.4) == 17


class TestPaperClocks:
    """The six Table 2 clock periods, from structure + family fit."""

    @pytest.mark.parametrize("variant,family,expected", [
        (Variant.ENCRYPT, "Acex1K", 14),
        (Variant.DECRYPT, "Acex1K", 15),
        (Variant.BOTH, "Acex1K", 17),
        (Variant.ENCRYPT, "Cyclone", 10),
        (Variant.DECRYPT, "Cyclone", 11),
        (Variant.BOTH, "Cyclone", 13),
    ])
    def test_clock_period(self, variant, family, expected):
        clock, _, _ = analyze(paper_spec(variant), device(family))
        assert clock == expected


class TestCriticalPathIdentity:
    def test_acex_encrypt_limited_by_eab(self):
        # §5: "the speed restriction is in the 32 bit parts" — the
        # asynchronous EAB read path dominates the encrypt device.
        _, critical, paths = analyze(paper_spec(Variant.ENCRYPT), ACEX)
        assert critical in ("sbox_eab_async", "kstran_eab")
        assert paths["sbox_eab_async"] > paths["mix_stage"]

    def test_acex_decrypt_limited_by_inv_mix(self):
        _, critical, _ = analyze(paper_spec(Variant.DECRYPT), ACEX)
        assert critical == "inv_mix_stage"

    def test_cyclone_paths_balanced(self):
        _, _, paths = analyze(paper_spec(Variant.ENCRYPT), CYCLONE)
        # With LC-mapped S-boxes the read path and mix path are close.
        assert abs(paths["sbox_in_luts"] - paths["mix_stage"]) < 2.0

    def test_both_adds_mux_level(self):
        enc = mix_path(paper_spec(Variant.ENCRYPT), ACEX, inverse=False)
        both = mix_path(paper_spec(Variant.BOTH), ACEX, inverse=False)
        assert both.delay_ns == pytest.approx(
            enc.delay_ns + ACEX.t_level
        )

    def test_decrypt_mix_deeper_than_encrypt(self):
        spec = paper_spec(Variant.BOTH)
        fwd = mix_path(spec, ACEX, inverse=False).delay_ns
        inv = mix_path(spec, ACEX, inverse=True).delay_ns
        assert inv > fwd


class TestPathVariants:
    def test_sync_rom_sbox_path_short(self):
        spec = paper_spec(Variant.ENCRYPT, sync_rom=True)
        path = sbox_path(spec, CYCLONE)
        assert path.name == "sbox_blockram_sync"
        assert path.delay_ns < sbox_path(
            paper_spec(Variant.ENCRYPT), CYCLONE
        ).delay_ns

    def test_lut_rom_path_on_cyclone(self):
        path = sbox_path(paper_spec(Variant.ENCRYPT), CYCLONE)
        assert path.name == "sbox_in_luts"

    def test_key_path_kinds(self):
        assert key_path(paper_spec(Variant.ENCRYPT), ACEX).name == \
            "kstran_eab"
        assert key_path(paper_spec(Variant.ENCRYPT), CYCLONE).name == \
            "kstran_in_luts"
        sync = paper_spec(Variant.ENCRYPT, sync_rom=True)
        assert key_path(sync, CYCLONE).name == "kstran_blockram_sync"

    def test_precomputed_key_path(self):
        from repro.arch.spec import ArchitectureSpec

        spec = ArchitectureSpec("t", Variant.ENCRYPT, sub_width=128,
                                wide_width=128,
                                key_schedule="precomputed")
        assert key_path(spec, ACEX).name == "key_ram_read"

    def test_encrypt_only_has_no_inverse_path(self):
        _, _, paths = analyze(paper_spec(Variant.ENCRYPT), ACEX)
        assert "inv_mix_stage" not in paths

    def test_both_has_all_paths(self):
        _, _, paths = analyze(paper_spec(Variant.BOTH), ACEX)
        assert {"mix_stage", "inv_mix_stage"} <= set(paths)
