"""Tests for the one-call synthesis flow."""

import pytest

from repro.arch.spec import ArchitectureSpec, paper_spec
from repro.fpga.devices import device
from repro.fpga.mapper import MappingError
from repro.fpga.synthesis import compile_spec, compile_table2
from repro.ip.control import Variant


class TestCompileSpec:
    def test_accepts_device_object(self):
        report = compile_spec(paper_spec(Variant.ENCRYPT),
                              device("Acex1K"))
        assert report.device.name == "EP1K100FC484-1"

    def test_accepts_family_string(self):
        report = compile_spec(paper_spec(Variant.ENCRYPT), "Cyclone")
        assert report.device.family == "Cyclone"

    def test_unknown_device_raises(self):
        with pytest.raises(KeyError):
            compile_spec(paper_spec(Variant.ENCRYPT), "Virtex")

    def test_strict_raises_on_oversize(self):
        oversized = ArchitectureSpec(
            "big", Variant.ENCRYPT, sub_width=128, wide_width=128,
        )
        with pytest.raises(MappingError):
            compile_spec(oversized, "Acex1K", strict=True)
        report = compile_spec(oversized, "Acex1K", strict=False)
        assert not report.fits

    def test_sync_rom_spec_uses_memory_on_cyclone(self):
        report = compile_spec(
            paper_spec(Variant.ENCRYPT, sync_rom=True), "Cyclone"
        )
        assert report.memory_bits == 16384
        assert report.latency_cycles == 60


class TestCompileTable2:
    def test_six_reports(self):
        reports = compile_table2()
        assert len(reports) == 6
        keys = {(r.spec.variant.value, r.device.family)
                for r in reports}
        assert len(keys) == 6

    def test_custom_family_subset(self):
        reports = compile_table2(families=("Acex1K",))
        assert len(reports) == 3
        assert all(r.device.family == "Acex1K" for r in reports)

    def test_sync_rom_flag_propagates(self):
        reports = compile_table2(families=("Cyclone",), sync_rom=True)
        assert all(r.spec.sync_rom for r in reports)
        assert all(r.memory_bits > 0 for r in reports)

    def test_all_reports_deterministic(self):
        a = compile_table2()
        b = compile_table2()
        assert [r.logic_elements for r in a] == \
            [r.logic_elements for r in b]
