"""Tests for the structural netlist container."""

import pytest

from repro.fpga.netlist import Netlist, RomBlock


class TestRomBlock:
    def test_bits(self):
        assert RomBlock(256, 8).bits == 2048
        assert RomBlock(256, 8, count=4).bits == 8192

    def test_address_bits(self):
        assert RomBlock(256, 8).address_bits == 8
        assert RomBlock(512, 8).address_bits == 9
        assert RomBlock(16, 128).address_bits == 4


class TestNetlist:
    def test_group_get_or_create(self):
        nl = Netlist("d")
        g1 = nl.group("state")
        g2 = nl.group("state")
        assert g1 is g2

    def test_add_luts(self):
        nl = Netlist("d")
        nl.add_luts("mix", 100)
        nl.add_luts("mix", 28)
        assert nl.total_luts == 128
        assert nl.group("mix").luts == 128

    def test_add_ff_packed_vs_unpacked(self):
        nl = Netlist("d")
        nl.add_ff("state", 128, packed=True)
        nl.add_ff("out", 128, packed=False)
        assert nl.total_ff == 256
        assert nl.total_ff_unpacked == 128

    def test_add_rom(self):
        nl = Netlist("d")
        nl.add_rom("sbox", 256, 8, count=4)
        assert nl.total_rom_bits == 8192
        assert len(nl.rom_blocks()) == 1
        group, rom = nl.rom_blocks()[0]
        assert group == "sbox" and rom.count == 4

    def test_add_pins(self):
        nl = Netlist("d")
        nl.add_pins("pins", 261)
        assert nl.total_pins == 261

    def test_negative_counts_rejected(self):
        nl = Netlist("d")
        with pytest.raises(ValueError):
            nl.add_luts("g", -1)
        with pytest.raises(ValueError):
            nl.add_ff("g", -1, packed=True)
        with pytest.raises(ValueError):
            nl.add_pins("g", -2)

    def test_rom_shape_validated(self):
        nl = Netlist("d")
        with pytest.raises(ValueError):
            nl.add_rom("g", 1, 8)
        with pytest.raises(ValueError):
            nl.add_rom("g", 256, 0)

    def test_merge(self):
        a = Netlist("a")
        a.add_luts("mix", 10)
        a.add_rom("sbox", 256, 8)
        b = Netlist("b")
        b.add_luts("mix", 5)
        b.merge(a)
        assert b.total_luts == 15
        assert b.total_rom_bits == 2048

    def test_merge_with_prefix(self):
        a = Netlist("a")
        a.add_luts("mix", 10)
        b = Netlist("b")
        b.merge(a, prefix="enc_")
        assert b.group("enc_mix").luts == 10

    def test_summary_mentions_groups(self):
        nl = Netlist("design")
        nl.add_luts("control", 42)
        nl.add_ff("state", 128, packed=True)
        text = nl.summary()
        assert "design" in text
        assert "control" in text
        assert "state" in text
