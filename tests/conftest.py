"""Shared fixtures for the reproduction test suite."""

from __future__ import annotations

import random

import pytest

from repro.ip.control import Variant
from repro.ip.testbench import Testbench


@pytest.fixture
def rng() -> random.Random:
    """Deterministic RNG — tests must not depend on global seeding."""
    return random.Random(0xAE5)


@pytest.fixture
def fips_key() -> bytes:
    """The FIPS-197 Appendix B key."""
    return bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")


@pytest.fixture
def fips_plaintext() -> bytes:
    """The FIPS-197 Appendix B plaintext."""
    return bytes.fromhex("3243f6a8885a308d313198a2e0370734")


@pytest.fixture
def fips_ciphertext() -> bytes:
    """The FIPS-197 Appendix B ciphertext."""
    return bytes.fromhex("3925841d02dc09fbdc118597196a0b32")


@pytest.fixture
def encrypt_bench(fips_key) -> Testbench:
    """An encrypt-only core with the FIPS key loaded."""
    bench = Testbench(Variant.ENCRYPT)
    bench.load_key(fips_key)
    return bench


@pytest.fixture
def decrypt_bench(fips_key) -> Testbench:
    """A decrypt-only core with the FIPS key loaded (setup pass done)."""
    bench = Testbench(Variant.DECRYPT)
    bench.load_key(fips_key)
    return bench


@pytest.fixture
def both_bench(fips_key) -> Testbench:
    """A combined core with the FIPS key loaded."""
    bench = Testbench(Variant.BOTH)
    bench.load_key(fips_key)
    return bench


def random_block(rng: random.Random) -> bytes:
    """A random 16-byte block."""
    return bytes(rng.randrange(256) for _ in range(16))


def random_key(rng: random.Random) -> bytes:
    """A random 16-byte key."""
    return bytes(rng.randrange(256) for _ in range(16))
