"""Property-based tests for the HDL deliverables (MIF, VCD)."""

from hypothesis import given, settings, strategies as st

from repro.hdl.mif import parse_mif, write_mif
from repro.rtl.signal import Signal
from repro.rtl.simulator import Simulator
from repro.rtl.trace import Trace
from repro.rtl.vcd import count_vcd_changes, parse_vcd_header, \
    trace_to_vcd

rom_contents = st.integers(min_value=1, max_value=6).flatmap(
    lambda bits: st.lists(
        st.integers(min_value=0, max_value=(1 << (bits + 2)) - 1),
        min_size=1, max_size=64,
    ).map(lambda words: (words, bits + 2))
)


class TestMifRoundTrip:
    @given(rom_contents)
    def test_write_parse_identity(self, contents):
        words, width = contents
        parsed = parse_mif(write_mif(words, width))
        assert parsed["words"] == words
        assert parsed["depth"] == len(words)
        assert parsed["width"] == width

    @given(st.lists(st.integers(0, 255), min_size=1, max_size=32),
           st.text(alphabet="abc XYZ", max_size=30))
    def test_comments_never_corrupt(self, words, comment):
        parsed = parse_mif(write_mif(words, 8, comment=comment))
        assert parsed["words"] == words


class TestVcdProperties:
    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.integers(0, 255), min_size=1, max_size=30))
    def test_change_count_matches_sequence(self, samples):
        sim = Simulator()
        reg = sim.register("value", 8, reset=samples[0])
        feed = iter(samples)

        def drive():
            try:
                reg.next = next(feed)
            except StopIteration:
                pass

        sim.add_clocked(drive)
        trace = Trace(sim, [reg])
        sim.step(len(samples))
        text = trace_to_vcd(trace)
        # Initial dump (1) + one line per change between consecutive
        # samples.
        history = trace.history("value")
        expected = 1 + sum(
            1 for a, b in zip(history, history[1:]) if a != b
        )
        assert count_vcd_changes(text) == expected

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=1, max_value=32))
    def test_header_widths_preserved(self, width):
        sim = Simulator()
        reg = sim.register("reg", width)
        flag = Signal("flag", 1)
        trace = Trace(sim, [reg, flag])
        sim.add_clocked(lambda: None)
        sim.step(2)
        _, variables = parse_vcd_header(trace_to_vcd(trace))
        assert dict(variables) == {"reg": width, "flag": 1}
