"""Property-based tests: GF(2^8) is a field; the column ring behaves."""

from hypothesis import given, strategies as st

from repro.gf.galois import (
    gf_add,
    gf_div,
    gf_inv,
    gf_mul,
    gf_mul_slow,
    gf_pow,
    xtime,
)
from repro.gf.polyring import MIX_POLY, ColumnPolynomial, ring_mul

byte = st.integers(min_value=0, max_value=255)
nonzero_byte = st.integers(min_value=1, max_value=255)
column = st.tuples(byte, byte, byte, byte)


class TestFieldAxioms:
    @given(byte, byte)
    def test_mul_commutative(self, a, b):
        assert gf_mul(a, b) == gf_mul(b, a)

    @given(byte, byte, byte)
    def test_mul_associative(self, a, b, c):
        assert gf_mul(gf_mul(a, b), c) == gf_mul(a, gf_mul(b, c))

    @given(byte, byte, byte)
    def test_distributive(self, a, b, c):
        assert gf_mul(a, gf_add(b, c)) == \
            gf_add(gf_mul(a, b), gf_mul(a, c))

    @given(byte)
    def test_mul_identity(self, a):
        assert gf_mul(a, 1) == a

    @given(nonzero_byte)
    def test_inverse_law(self, a):
        assert gf_mul(a, gf_inv(a)) == 1

    @given(byte, byte)
    def test_table_mul_matches_slow_mul(self, a, b):
        assert gf_mul(a, b) == gf_mul_slow(a, b)

    @given(byte)
    def test_xtime_is_mul_two(self, a):
        assert xtime(a) == gf_mul(a, 2)

    @given(nonzero_byte, nonzero_byte)
    def test_division_inverts_multiplication(self, a, b):
        assert gf_div(gf_mul(a, b), b) == a

    @given(byte, st.integers(min_value=0, max_value=20),
           st.integers(min_value=0, max_value=20))
    def test_pow_adds_exponents(self, a, m, n):
        assert gf_mul(gf_pow(a, m), gf_pow(a, n)) == gf_pow(a, m + n) \
            or a == 0  # 0^0 convention makes the 0 case special
        if a != 0:
            assert gf_mul(gf_pow(a, m), gf_pow(a, n)) == gf_pow(a, m + n)


class TestColumnRing:
    @given(column, column)
    def test_ring_mul_commutative(self, a, b):
        assert ring_mul(a, b) == ring_mul(b, a)

    @given(column, column, column)
    def test_ring_mul_distributes_over_xor(self, a, b, c):
        bc = tuple(x ^ y for x, y in zip(b, c))
        lhs = ring_mul(a, bc)
        rhs = tuple(
            x ^ y for x, y in zip(ring_mul(a, b), ring_mul(a, c))
        )
        assert lhs == rhs

    @given(column)
    def test_mix_poly_round_trip(self, a):
        """c(x) then d(x) restores every column — MixColumn is a
        bijection (the decrypt datapath depends on this)."""
        mixed = ring_mul(a, MIX_POLY.coeffs)
        restored = ring_mul(mixed, MIX_POLY.inverse().coeffs)
        assert restored == a

    @given(column)
    def test_identity_element(self, a):
        assert ring_mul(a, (1, 0, 0, 0)) == a

    @given(column)
    def test_x4_wraps_to_identity(self, a):
        # Multiplying by x four times returns the column (x^4 = 1).
        out = a
        for _ in range(4):
            out = ring_mul(out, (0, 1, 0, 0))
        assert out == a

    @given(column)
    def test_polynomial_object_consistent_with_ring_mul(self, a):
        poly = ColumnPolynomial(a)
        assert (poly * MIX_POLY).coeffs == ring_mul(a, MIX_POLY.coeffs)
