"""Property-based tests on the block modes and padding."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.aes.modes import (
    cbc_decrypt,
    cbc_encrypt,
    cfb_decrypt,
    cfb_encrypt,
    ctr_xcrypt,
    ecb_decrypt,
    ecb_encrypt,
    ofb_xcrypt,
    pkcs7_pad,
    pkcs7_unpad,
)

key16 = st.binary(min_size=16, max_size=16)
iv16 = st.binary(min_size=16, max_size=16)
nonce8 = st.binary(min_size=8, max_size=8)
aligned = st.integers(min_value=0, max_value=4).flatmap(
    lambda n: st.binary(min_size=16 * n, max_size=16 * n)
)
anything = st.binary(min_size=0, max_size=80)

FAST = settings(max_examples=15, deadline=None)


class TestPadding:
    @given(anything, st.integers(min_value=1, max_value=255))
    def test_pad_round_trip(self, data, block):
        assert pkcs7_unpad(pkcs7_pad(data, block), block) == data

    @given(anything, st.integers(min_value=2, max_value=255),
           st.data())
    def test_corrupted_pad_byte_rejected(self, data, block, draw):
        # Force at least 2 pad bytes so a non-final one exists, then
        # corrupt it: validation must reject, not just read the tail.
        if len(data) % block == block - 1:
            data += b"\x00"
        padded = bytearray(pkcs7_pad(data, block))
        pad = padded[-1]
        offset = draw.draw(st.integers(min_value=2, max_value=pad))
        padded[-offset] ^= draw.draw(
            st.integers(min_value=1, max_value=255))
        with pytest.raises(ValueError):
            pkcs7_unpad(bytes(padded), block)

    @given(anything)
    def test_pad_alignment(self, data):
        assert len(pkcs7_pad(data)) % 16 == 0

    @given(anything)
    def test_pad_grows(self, data):
        padded = pkcs7_pad(data)
        assert len(padded) > len(data)
        assert 1 <= len(padded) - len(data) <= 16


class TestModeRoundTrips:
    @FAST
    @given(key16, aligned)
    def test_ecb(self, key, data):
        assert ecb_decrypt(key, ecb_encrypt(key, data)) == data

    @FAST
    @given(key16, iv16, aligned)
    def test_cbc(self, key, iv, data):
        assert cbc_decrypt(key, iv, cbc_encrypt(key, iv, data)) == data

    @FAST
    @given(key16, iv16, aligned)
    def test_cfb(self, key, iv, data):
        assert cfb_decrypt(key, iv, cfb_encrypt(key, iv, data)) == data

    @FAST
    @given(key16, nonce8, anything)
    def test_ctr(self, key, nonce, data):
        assert ctr_xcrypt(key, nonce, ctr_xcrypt(key, nonce, data)) == \
            data

    @FAST
    @given(key16, iv16, anything)
    def test_ofb(self, key, iv, data):
        assert ofb_xcrypt(key, iv, ofb_xcrypt(key, iv, data)) == data


class TestModeStructure:
    @FAST
    @given(key16, iv16, aligned)
    def test_cbc_length_preserved(self, key, iv, data):
        assert len(cbc_encrypt(key, iv, data)) == len(data)

    @FAST
    @given(key16, nonce8, anything)
    def test_ctr_length_preserved(self, key, nonce, data):
        assert len(ctr_xcrypt(key, nonce, data)) == len(data)

    @FAST
    @given(key16, st.binary(min_size=32, max_size=32))
    def test_ecb_blockwise_independent(self, key, data):
        whole = ecb_encrypt(key, data)
        assert whole[:16] == ecb_encrypt(key, data[:16])
        assert whole[16:] == ecb_encrypt(key, data[16:])

    @FAST
    @given(key16, iv16, st.binary(min_size=32, max_size=32))
    def test_cbc_blocks_chained(self, key, iv, data):
        # Changing block 0 of the plaintext changes block 1 of the
        # ciphertext (unlike ECB).
        base = cbc_encrypt(key, iv, data)
        tweaked = bytes([data[0] ^ 1]) + data[1:]
        other = cbc_encrypt(key, iv, tweaked)
        assert base[16:] != other[16:]
