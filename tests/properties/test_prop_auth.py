"""Property tests for CMAC and Key Wrap."""

from hypothesis import given, settings, strategies as st

from repro.aes.auth import cmac, cmac_verify, key_unwrap, key_wrap

key16 = st.binary(min_size=16, max_size=16)
message = st.binary(min_size=0, max_size=70)
key_material = st.integers(min_value=2, max_value=5).flatmap(
    lambda n: st.binary(min_size=8 * n, max_size=8 * n)
)

FAST = settings(max_examples=15, deadline=None)


class TestCmacProperties:
    @FAST
    @given(key16, message)
    def test_deterministic(self, key, msg):
        assert cmac(key, msg) == cmac(key, msg)

    @FAST
    @given(key16, message)
    def test_verify_round_trip(self, key, msg):
        assert cmac_verify(key, msg, cmac(key, msg))

    @FAST
    @given(key16, message, st.integers(0, 127))
    def test_single_bit_tamper_detected(self, key, msg, bit):
        tag = bytearray(cmac(key, msg))
        tag[bit // 8] ^= 1 << (bit % 8)
        assert not cmac_verify(key, msg, bytes(tag))

    @FAST
    @given(key16, message)
    def test_appending_byte_changes_tag(self, key, msg):
        assert cmac(key, msg) != cmac(key, msg + b"\x00")

    @FAST
    @given(key16, message)
    def test_tag_is_block_sized(self, key, msg):
        assert len(cmac(key, msg)) == 16


class TestKeyWrapProperties:
    @FAST
    @given(key16, key_material)
    def test_round_trip(self, kek, material):
        assert key_unwrap(kek, key_wrap(kek, material)) == material

    @FAST
    @given(key16, key_material)
    def test_wrapped_longer_by_eight(self, kek, material):
        assert len(key_wrap(kek, material)) == len(material) + 8

    @FAST
    @given(key16, key16, key_material)
    def test_wrong_kek_rejected(self, kek, other, material):
        if kek == other:
            return
        import pytest

        from repro.aes.auth import IntegrityError

        wrapped = key_wrap(kek, material)
        with pytest.raises(IntegrityError):
            key_unwrap(other, wrapped)
