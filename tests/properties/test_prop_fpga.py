"""Property-based tests on the synthesis-estimation flow."""

from hypothesis import given, settings, strategies as st

from repro.arch.spec import ArchitectureSpec
from repro.fpga.aes_netlists import build_netlist
from repro.fpga.primitives import (
    mux_luts,
    rom_as_luts,
    xor_network_depth,
    xor_tree_luts,
)
from repro.fpga.synthesis import compile_spec
from repro.ip.control import Variant

variants = st.sampled_from(list(Variant))
sub_widths = st.sampled_from([8, 16, 32])
schedules = st.sampled_from(["on_the_fly", "precomputed"])


def spec_strategy():
    return st.builds(
        lambda v, s, k, sync: ArchitectureSpec(
            name=f"prop-{v.value}-{s}-{k}-{sync}",
            variant=v,
            sub_width=s,
            wide_width=128,
            key_schedule=k,
            sync_rom=sync,
        ),
        variants, sub_widths, schedules, st.booleans(),
    )


class TestPrimitiveMonotonicity:
    @given(st.integers(min_value=0, max_value=200))
    def test_xor_tree_monotone(self, n):
        assert xor_tree_luts(n) <= xor_tree_luts(n + 1)

    @given(st.integers(min_value=2, max_value=200))
    def test_xor_tree_at_most_linear(self, n):
        assert xor_tree_luts(n) <= n - 1  # never worse than a chain

    @given(st.integers(min_value=1, max_value=500))
    def test_depth_log_bounded(self, n):
        depth = xor_network_depth(n)
        assert 4 ** depth >= n
        assert depth == 0 or 4 ** (depth - 1) < n

    @given(st.integers(min_value=0, max_value=256),
           st.integers(min_value=1, max_value=8))
    def test_mux_monotone_in_ways(self, bits, ways):
        assert mux_luts(bits, ways) <= mux_luts(bits, ways + 1)

    @given(st.sampled_from([16, 32, 64, 128, 256, 512]),
           st.integers(min_value=1, max_value=16))
    def test_rom_as_luts_scales_with_width(self, words, width):
        assert rom_as_luts(words, width) == width * rom_as_luts(words, 1)


class TestFlowInvariants:
    @settings(max_examples=25, deadline=None)
    @given(spec_strategy())
    def test_netlist_nonnegative_and_pinned(self, spec):
        nl = build_netlist(spec)
        assert nl.total_luts > 0
        assert nl.total_ff > 0
        assert nl.total_pins in (261, 262)

    @settings(max_examples=25, deadline=None)
    @given(spec_strategy())
    def test_fit_report_consistent(self, spec):
        report = compile_spec(spec, "Acex1K", strict=False)
        assert report.logic_elements > 0
        assert report.clock_ns >= 1
        assert report.latency_ns == \
            report.latency_cycles * report.clock_ns
        assert report.throughput_mbps > 0
        # Throughput never exceeds 128 bits per clock.
        assert report.throughput_mbps <= 128 * 1000 / report.clock_ns

    @settings(max_examples=15, deadline=None)
    @given(sub_widths)
    def test_wider_sub_means_fewer_cycles_more_rom(self, width):
        narrow = ArchitectureSpec("n", Variant.ENCRYPT, sub_width=8,
                                  wide_width=128)
        wide = ArchitectureSpec("w", Variant.ENCRYPT, sub_width=width,
                                wide_width=128)
        assert wide.block_latency_cycles <= narrow.block_latency_cycles
        assert wide.rom_bits >= narrow.rom_bits

    @settings(max_examples=10, deadline=None)
    @given(spec_strategy())
    def test_both_variant_never_smaller(self, spec):
        if spec.variant is not Variant.BOTH:
            both = ArchitectureSpec(
                spec.name + "-both", Variant.BOTH,
                sub_width=spec.sub_width, wide_width=spec.wide_width,
                key_schedule=spec.key_schedule, sync_rom=spec.sync_rom,
            )
            single = compile_spec(spec, "Acex1K", strict=False)
            combined = compile_spec(both, "Acex1K", strict=False)
            assert combined.logic_elements > single.logic_elements
            assert combined.clock_ns >= single.clock_ns
