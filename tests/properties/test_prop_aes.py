"""Property-based tests on the behavioral cipher and key schedule."""

from hypothesis import given, settings, strategies as st

from repro.aes.cipher import AES128, Rijndael
from repro.aes.key_schedule import (
    expand_key,
    next_round_key,
    previous_round_key,
)
from repro.aes.state import State
from repro.aes.transforms import (
    add_round_key,
    inv_mix_columns,
    inv_shift_rows,
    inv_sub_bytes,
    mix_columns,
    shift_rows,
    sub_bytes,
)

block16 = st.binary(min_size=16, max_size=16)
key16 = st.binary(min_size=16, max_size=16)
key_any = st.sampled_from([16, 24, 32]).flatmap(
    lambda n: st.binary(min_size=n, max_size=n)
)
word = st.integers(min_value=0, max_value=0xFFFFFFFF)
round_key = st.tuples(word, word, word, word)


class TestTransformInvariants:
    @given(block16)
    def test_sub_bytes_bijective(self, data):
        state = State(data)
        assert inv_sub_bytes(sub_bytes(state)) == state
        assert sub_bytes(inv_sub_bytes(state)) == state

    @given(block16)
    def test_shift_rows_bijective(self, data):
        state = State(data)
        assert inv_shift_rows(shift_rows(state)) == state

    @given(block16)
    def test_mix_columns_bijective(self, data):
        state = State(data)
        assert inv_mix_columns(mix_columns(state)) == state

    @given(block16, key16)
    def test_add_key_involution(self, data, key):
        state = State(data)
        assert add_round_key(add_round_key(state, key), key) == state

    @given(block16)
    def test_sub_bytes_commutes_with_shift_rows(self, data):
        """Both are byte-local/byte-permuting, so they commute — the
        algebraic fact behind the hardware's freedom to order the
        32-bit ByteSub passes before the 128-bit ShiftRow."""
        state = State(data)
        assert sub_bytes(shift_rows(state)) == \
            shift_rows(sub_bytes(state))

    @given(block16)
    def test_transforms_preserve_length(self, data):
        for fn in (sub_bytes, shift_rows, mix_columns):
            assert len(fn(State(data)).to_bytes()) == 16


class TestCipherProperties:
    @settings(max_examples=30)
    @given(key16, block16)
    def test_encrypt_decrypt_round_trip(self, key, block):
        aes = AES128(key)
        assert aes.decrypt_block(aes.encrypt_block(block)) == block

    @settings(max_examples=30)
    @given(key16, block16)
    def test_encryption_is_permutation_sample(self, key, block):
        # Injectivity spot-check: flipping the input flips the output.
        aes = AES128(key)
        other = bytes([block[0] ^ 1]) + block[1:]
        assert aes.encrypt_block(block) != aes.encrypt_block(other)

    @settings(max_examples=15)
    @given(key_any, block16)
    def test_all_key_sizes_round_trip(self, key, block):
        cipher = Rijndael(key, block_bytes=16)
        assert cipher.decrypt_block(cipher.encrypt_block(block)) == block

    @settings(max_examples=20)
    @given(key16, block16)
    def test_ciphertext_never_equals_plaintext_trivially(self, key,
                                                         block):
        # Not a theorem for every input, but with random inputs a
        # collision would indicate the identity sneaking in.
        assert AES128(key).encrypt_block(block) != block


class TestKeyScheduleProperties:
    @settings(max_examples=30)
    @given(key16)
    def test_on_the_fly_equals_expansion(self, key):
        words = expand_key(key, 10)
        current = tuple(words[0:4])
        for rnd in range(1, 11):
            current = next_round_key(current, rnd)
        assert list(current) == words[40:44]

    @given(round_key, st.integers(min_value=1, max_value=10))
    def test_forward_reverse_are_inverse(self, key_words, rnd):
        assert previous_round_key(
            next_round_key(key_words, rnd), rnd
        ) == key_words

    @given(round_key, st.integers(min_value=1, max_value=10))
    def test_reverse_forward_are_inverse(self, key_words, rnd):
        assert next_round_key(
            previous_round_key(key_words, rnd), rnd
        ) == key_words

    @settings(max_examples=20)
    @given(key16)
    def test_round_keys_all_distinct(self, key):
        words = expand_key(key, 10)
        keys = {tuple(words[4 * r : 4 * r + 4]) for r in range(11)}
        assert len(keys) == 11
