"""Property-based tests: the cycle-accurate IP equals the golden model.

This is the central verification property of the reproduction: for
arbitrary keys and blocks, the hardware model and the behavioral model
produce identical bits, in every variant, at the documented latency.
"""

from hypothesis import given, settings, strategies as st

from repro.aes.cipher import AES128
from repro.ip.control import Variant
from repro.ip.datapath import (
    block_to_words,
    decrypt_mix_stage,
    encrypt_mix_stage,
    int_to_words,
    inv_mix_columns_128,
    inv_shift_rows_128,
    mix_columns_128,
    shift_rows_128,
    words_to_block,
    words_to_int,
)
from repro.ip.testbench import Testbench

block16 = st.binary(min_size=16, max_size=16)
key16 = st.binary(min_size=16, max_size=16)
word4 = st.tuples(*([st.integers(0, 0xFFFFFFFF)] * 4))

# Cycle-accurate runs are comparatively slow; keep example counts sane.
IP_SETTINGS = settings(max_examples=12, deadline=None)


class TestHardwareEqualsGolden:
    @IP_SETTINGS
    @given(key16, block16)
    def test_encrypt_core(self, key, block):
        bench = Testbench(Variant.ENCRYPT)
        bench.load_key(key)
        result, latency = bench.encrypt(block)
        assert result == AES128(key).encrypt_block(block)
        assert latency == 50

    @IP_SETTINGS
    @given(key16, block16)
    def test_decrypt_core(self, key, block):
        bench = Testbench(Variant.DECRYPT)
        bench.load_key(key)
        result, latency = bench.decrypt(block)
        assert result == AES128(key).decrypt_block(block)
        assert latency == 50

    @IP_SETTINGS
    @given(key16, block16)
    def test_both_core_round_trip(self, key, block):
        bench = Testbench(Variant.BOTH)
        bench.load_key(key)
        ct, _ = bench.encrypt(block)
        pt, _ = bench.decrypt(ct)
        assert ct == AES128(key).encrypt_block(block)
        assert pt == block

    @settings(max_examples=6, deadline=None)
    @given(key16, block16)
    def test_sync_rom_build_equivalent(self, key, block):
        bench = Testbench(Variant.ENCRYPT, sync_rom=True)
        bench.load_key(key)
        result, latency = bench.encrypt(block)
        assert result == AES128(key).encrypt_block(block)
        assert latency == 60


class TestDatapathAlgebra:
    @given(word4)
    def test_shift_rows_bijective(self, words):
        assert inv_shift_rows_128(shift_rows_128(words)) == words

    @given(word4)
    def test_mix_columns_bijective(self, words):
        assert inv_mix_columns_128(mix_columns_128(words)) == words

    @given(word4, word4)
    def test_mix_stages_inverse(self, words, key):
        for last in (False, True):
            forward = encrypt_mix_stage(words, key, last_round=last)
            assert decrypt_mix_stage(forward, key,
                                     first_round=last) == words

    @given(word4)
    def test_word_block_round_trip(self, words):
        assert block_to_words(words_to_block(words)) == words

    @given(st.integers(min_value=0, max_value=(1 << 128) - 1))
    def test_int_word_round_trip(self, value):
        assert words_to_int(int_to_words(value)) == value

    @given(st.binary(min_size=16, max_size=16))
    def test_hw_transforms_match_behavioral(self, block):
        from repro.aes.state import State
        from repro.aes.transforms import mix_columns, shift_rows

        words = block_to_words(block)
        assert words_to_block(shift_rows_128(words)) == \
            shift_rows(State(block)).to_bytes()
        assert words_to_block(mix_columns_128(words)) == \
            mix_columns(State(block)).to_bytes()
