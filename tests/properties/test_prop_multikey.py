"""Property tests: the multi-key-size core vs the golden model."""

from hypothesis import given, settings, strategies as st

from repro.aes.cipher import Rijndael
from repro.ip.multikey import MultiKeyTestbench

key_and_block = st.sampled_from([128, 192, 256]).flatmap(
    lambda bits: st.tuples(
        st.just(bits),
        st.binary(min_size=bits // 8, max_size=bits // 8),
        st.binary(min_size=16, max_size=16),
    )
)


class TestMultiKeyHardware:
    @settings(max_examples=12, deadline=None)
    @given(key_and_block)
    def test_matches_golden_model(self, case):
        bits, key, block = case
        bench = MultiKeyTestbench(bits)
        bench.load_key(key)
        ct, latency = bench.encrypt(block)
        assert ct == Rijndael(key, block_bytes=16).encrypt_block(block)
        assert latency == (bits // 32 + 6) * 5

    @settings(max_examples=8, deadline=None)
    @given(st.sampled_from([192, 256]),
           st.binary(min_size=16, max_size=16))
    def test_key_change_isolated(self, bits, block):
        # Two different keys through the same core must both match
        # their own golden models (the window resets per block).
        bench = MultiKeyTestbench(bits)
        key1 = bytes(range(bits // 8))
        key2 = bytes(reversed(range(bits // 8)))
        bench.load_key(key1)
        ct1, _ = bench.encrypt(block)
        bench.load_key(key2)
        ct2, _ = bench.encrypt(block)
        assert ct1 == Rijndael(key1, 16).encrypt_block(block)
        assert ct2 == Rijndael(key2, 16).encrypt_block(block)
        assert ct1 != ct2
