"""Guards on the public API surface and documentation hygiene."""

import importlib
import inspect

import pytest

import repro

PUBLIC_MODULES = [
    "repro",
    "repro.aes", "repro.aes.cipher", "repro.aes.constants",
    "repro.aes.key_schedule", "repro.aes.modes", "repro.aes.state",
    "repro.aes.transforms", "repro.aes.vectors", "repro.aes.fast",
    "repro.aes.auth", "repro.aes.selftest", "repro.aes.gcm",
    "repro.gf", "repro.gf.galois", "repro.gf.polyring",
    "repro.rtl", "repro.rtl.signal", "repro.rtl.simulator",
    "repro.rtl.trace", "repro.rtl.vcd",
    "repro.ip", "repro.ip.core", "repro.ip.control",
    "repro.ip.datapath", "repro.ip.interface", "repro.ip.sbox_unit",
    "repro.ip.keysched_unit", "repro.ip.testbench",
    "repro.ip.buswrap", "repro.ip.hardened", "repro.ip.multikey",
    "repro.ip.precomputed",
    "repro.fpga", "repro.fpga.devices", "repro.fpga.netlist",
    "repro.fpga.primitives", "repro.fpga.mapper", "repro.fpga.timing",
    "repro.fpga.calibration", "repro.fpga.report",
    "repro.fpga.synthesis", "repro.fpga.aes_netlists",
    "repro.arch", "repro.arch.spec", "repro.arch.explorer",
    "repro.arch.baselines", "repro.arch.keysize",
    "repro.analysis", "repro.analysis.metrics",
    "repro.analysis.tables", "repro.analysis.figures",
    "repro.analysis.power", "repro.analysis.seu",
    "repro.analysis.avalanche", "repro.analysis.randomness",
    "repro.analysis.report_gen",
    "repro.hdl", "repro.hdl.mif", "repro.hdl.vhdl_gen",
    "repro.hdl.lint",
    "repro.perf", "repro.perf.backends", "repro.perf.engine",
    "repro.perf.bench",
    "repro.obs", "repro.obs.metrics", "repro.obs.tracing",
    "repro.obs.hwcounters", "repro.obs.report",
    "repro.serve", "repro.serve.protocol", "repro.serve.server",
    "repro.serve.client",
    "repro.cli",
]


class TestModuleSurface:
    @pytest.mark.parametrize("name", PUBLIC_MODULES)
    def test_imports_cleanly(self, name):
        module = importlib.import_module(name)
        assert module is not None

    @pytest.mark.parametrize("name", PUBLIC_MODULES)
    def test_has_module_docstring(self, name):
        module = importlib.import_module(name)
        assert module.__doc__ and len(module.__doc__.strip()) > 40, \
            f"{name} lacks a substantive module docstring"

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_top_level_all_resolves(self):
        for symbol in repro.__all__:
            assert hasattr(repro, symbol), symbol


class TestPublicDocstrings:
    """Every public class and function in the core packages carries a
    docstring — the 'documented public API' deliverable."""

    CHECKED = [
        "repro.aes.cipher", "repro.aes.modes", "repro.aes.auth",
        "repro.aes.gcm",
        "repro.gf.galois", "repro.gf.polyring",
        "repro.ip.core", "repro.ip.testbench", "repro.ip.interface",
        "repro.fpga.synthesis", "repro.fpga.mapper",
        "repro.arch.spec", "repro.analysis.tables",
        "repro.hdl.vhdl_gen",
        "repro.perf.backends", "repro.perf.engine",
        "repro.perf.bench",
        "repro.obs.metrics", "repro.obs.tracing",
        "repro.obs.hwcounters", "repro.obs.report",
        "repro.serve.protocol", "repro.serve.server",
        "repro.serve.client",
    ]

    @pytest.mark.parametrize("name", CHECKED)
    def test_public_callables_documented(self, name):
        module = importlib.import_module(name)
        undocumented = []
        for attr_name, attr in vars(module).items():
            if attr_name.startswith("_"):
                continue
            if getattr(attr, "__module__", None) != name:
                continue  # re-exports documented at their source
            if inspect.isclass(attr) or inspect.isfunction(attr):
                if not (attr.__doc__ or "").strip():
                    undocumented.append(attr_name)
        assert not undocumented, f"{name}: {undocumented}"

    def test_core_class_methods_documented(self):
        from repro.ip.core import RijndaelCore

        undocumented = [
            name for name, member in vars(RijndaelCore).items()
            if not name.startswith("_")
            and callable(member)
            and not (member.__doc__ or "").strip()
        ]
        assert not undocumented, undocumented


class TestNoAccidentalDependencies:
    # Sanctioned optional accelerators: importable ONLY behind a
    # try/except ImportError guard, so the install itself stays
    # dependency-free.
    OPTIONAL = {"numpy"}

    def test_library_is_stdlib_only(self):
        """The src tree must not import beyond the stdlib (the
        install has no dependencies); optional accelerators must be
        ImportError-guarded."""
        import ast
        import sys
        from pathlib import Path

        src = Path(repro.__file__).parent
        allowed_roots = set(sys.stdlib_module_names) | {"repro"}
        offenders = []
        for path in src.rglob("*.py"):
            tree = ast.parse(path.read_text())
            guarded = set()
            for node in ast.walk(tree):
                if not isinstance(node, ast.Try):
                    continue
                catches_import_error = any(
                    isinstance(h.type, ast.Name)
                    and h.type.id in ("ImportError",
                                      "ModuleNotFoundError")
                    for h in node.handlers
                )
                if catches_import_error:
                    for stmt in node.body:
                        guarded.update(ast.walk(stmt))
            for node in ast.walk(tree):
                if isinstance(node, ast.Import):
                    roots = [a.name.split(".")[0] for a in node.names]
                elif isinstance(node, ast.ImportFrom):
                    if node.level:  # relative
                        continue
                    roots = [(node.module or "").split(".")[0]]
                else:
                    continue
                for root in roots:
                    if not root or root in allowed_roots:
                        continue
                    if root in self.OPTIONAL and node in guarded:
                        continue
                    offenders.append(f"{path.name}: {root}")
        assert not offenders, offenders
