"""Cross-layer integration tests.

These exercise whole paths a downstream user would take: block modes
running over the cycle-accurate hardware, Monte-Carlo chains keeping
software and hardware locked together over long runs, the synthesis
flow consuming specs end to end, and the example scripts executing.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.aes.cipher import AES128
from repro.aes.modes import cbc_decrypt, cbc_encrypt
from repro.ip.control import Variant
from repro.ip.core import DIR_DECRYPT, DIR_ENCRYPT
from repro.ip.testbench import Testbench

REPO = Path(__file__).resolve().parent.parent


class TestModesOverHardware:
    """CBC computed with the IP must equal the software mode."""

    def test_cbc_chain_on_device(self, rng, fips_key):
        iv = bytes(rng.randrange(256) for _ in range(16))
        plaintext = bytes(rng.randrange(256) for _ in range(64))
        software = cbc_encrypt(fips_key, iv, plaintext)

        bench = Testbench(Variant.ENCRYPT)
        bench.load_key(fips_key)
        feedback = iv
        hardware = bytearray()
        for i in range(0, len(plaintext), 16):
            block = bytes(
                p ^ f for p, f in zip(plaintext[i:i + 16], feedback)
            )
            feedback, _ = bench.encrypt(block)
            hardware.extend(feedback)
        assert bytes(hardware) == software

    def test_cbc_round_trip_split_devices(self, rng):
        key = bytes(rng.randrange(256) for _ in range(16))
        iv = bytes(rng.randrange(256) for _ in range(16))
        plaintext = bytes(rng.randrange(256) for _ in range(48))
        ciphertext = cbc_encrypt(key, iv, plaintext)

        bench = Testbench(Variant.DECRYPT)
        bench.load_key(key)
        feedback = iv
        recovered = bytearray()
        for i in range(0, len(ciphertext), 16):
            block = ciphertext[i:i + 16]
            plain, _ = bench.decrypt(block)
            recovered.extend(p ^ f for p, f in zip(plain, feedback))
            feedback = block
        assert bytes(recovered) == plaintext
        assert cbc_decrypt(key, iv, ciphertext) == plaintext


class TestMonteCarloChains:
    """AESAVS-style Monte Carlo: feed each output back as the next
    input; hardware and software must agree at every link."""

    def test_encrypt_chain(self, fips_key):
        bench = Testbench(Variant.ENCRYPT)
        bench.load_key(fips_key)
        golden = AES128(fips_key)
        block = bytes(16)
        for _ in range(60):
            hw, _ = bench.encrypt(block)
            sw = golden.encrypt_block(block)
            assert hw == sw
            block = hw
        # The chain never cycles back to the start this quickly.
        assert block != bytes(16)

    def test_alternating_chain_on_both_device(self, fips_key):
        # encrypt, decrypt, encrypt, ... starting blocks recur every
        # 2 steps: E then D is the identity.
        bench = Testbench(Variant.BOTH)
        bench.load_key(fips_key)
        start = bytes(range(16))
        block = start
        for step in range(20):
            direction = DIR_ENCRYPT if step % 2 == 0 else DIR_DECRYPT
            block, _ = bench.process_block(block, direction=direction)
        assert block == start

    def test_chain_with_rekey_every_ten(self, rng):
        bench = Testbench(Variant.ENCRYPT)
        block = bytes(16)
        for chunk in range(3):
            key = bytes(rng.randrange(256) for _ in range(16))
            bench.load_key(key)
            golden = AES128(key)
            for _ in range(10):
                hw, _ = bench.encrypt(block)
                assert hw == golden.encrypt_block(block)
                block = hw


class TestSynthesisEndToEnd:
    def test_every_paper_point_on_every_family(self):
        from repro.arch.spec import PAPER_SPECS
        from repro.fpga.synthesis import compile_spec

        for spec in PAPER_SPECS.values():
            for family in ("Acex1K", "Cyclone"):
                report = compile_spec(spec, family)
                assert report.fits
                assert report.latency_cycles == 50

    def test_hdl_matches_model_facts(self):
        from repro.hdl.vhdl_gen import generate_package
        from repro.ip.control import block_latency

        # The emitted package constants track the model by
        # construction; a regression here means the generator and the
        # model diverged.
        text = generate_package()
        assert f"BLOCK_LATENCY    : natural := {block_latency()}" in text


EXAMPLES = sorted(
    p.name for p in (REPO / "examples").glob("*.py")
)


class TestExamples:
    @pytest.mark.parametrize("script", EXAMPLES)
    def test_example_runs(self, script, tmp_path):
        args = [sys.executable, str(REPO / "examples" / script)]
        if script == "ip_delivery.py":
            args.append(str(tmp_path / "pkg"))
        env = dict(os.environ)
        src = str(REPO / "src")
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            src + os.pathsep + existing if existing else src
        )
        result = subprocess.run(
            args, capture_output=True, text=True, timeout=240,
            cwd=str(tmp_path), env=env,
        )
        assert result.returncode == 0, result.stderr[-2000:]
        assert result.stdout  # every example narrates its run

    def test_expected_example_set(self):
        assert {"quickstart.py", "secure_link.py", "smartcard.py",
                "backbone_throughput.py", "design_space.py",
                "ip_delivery.py"} <= set(EXAMPLES)
