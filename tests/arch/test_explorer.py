"""Tests for the §6 design-space exploration."""

import pytest

from repro.arch.explorer import explore_widths, knee_design, sweep_report
from repro.ip.control import Variant

REPORTS = explore_widths("Acex1K", Variant.ENCRYPT)
BY_NAME = {r.spec.name: r for r in REPORTS}


class TestSweepShape:
    def test_all_points_reported(self):
        assert len(REPORTS) == 6

    def test_narrow_designs_slow(self):
        """§6: 8/16-bit designs 'will use many clock cycles and the
        clock speed will not reverse this problem'."""
        assert BY_NAME["uniform-8-encrypt"].latency_ns > \
            4 * BY_NAME["mixed-32-128-encrypt"].latency_ns
        assert BY_NAME["uniform-16-encrypt"].throughput_mbps < \
            BY_NAME["mixed-32-128-encrypt"].throughput_mbps / 2

    def test_wide_design_capped_by_key_schedule(self):
        """§6: 'larger architectures do not provide a large increase
        of performance' — the on-the-fly 128-bit point gains only
        ~25 % over mixed despite ~2.5x the S-box memory."""
        mixed = BY_NAME["mixed-32-128-encrypt"]
        full = BY_NAME["full-128-encrypt"]
        assert full.throughput_mbps < 1.4 * mixed.throughput_mbps
        assert full.spec.rom_bits > 2 * mixed.spec.rom_bits

    def test_precomputed_keys_unlock_wide_design(self):
        otf = BY_NAME["full-128-encrypt"]
        pre = BY_NAME["full-128-precomp-encrypt"]
        assert pre.throughput_mbps > 1.5 * otf.throughput_mbps

    def test_oversize_designs_flagged(self):
        # 16 data S-boxes need more EABs than the EP1K100 has.
        assert not BY_NAME["full-128-encrypt"].fits
        assert not BY_NAME["full-128-precomp-encrypt"].fits
        assert BY_NAME["mixed-32-128-encrypt"].fits

    def test_paper_design_is_the_knee(self):
        """The mixed 32/128 point wins throughput-per-LE among designs
        that actually fit the paper's device."""
        assert knee_design(REPORTS).spec.name == "mixed-32-128-encrypt"

    def test_knee_requires_fitting_points(self):
        with pytest.raises(ValueError):
            knee_design([r for r in REPORTS if not r.fits])

    def test_report_renders_all_rows(self):
        text = sweep_report(REPORTS)
        for name in BY_NAME:
            assert name in text
        assert "Mbps/kLE" in text


class TestCustomSweeps:
    def test_explore_accepts_explicit_specs(self):
        from repro.arch.spec import paper_spec

        reports = explore_widths(
            "Cyclone", specs=[paper_spec(Variant.ENCRYPT)]
        )
        assert len(reports) == 1
        assert reports[0].device.family == "Cyclone"

    def test_decrypt_variant_sweep(self):
        reports = explore_widths("Acex1K", Variant.DECRYPT)
        assert all(r.spec.variant is Variant.DECRYPT for r in reports)
