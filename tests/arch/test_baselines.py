"""Tests for the Table 3 literature baselines."""

import pytest

from repro.arch.baselines import BASELINES, baseline, table3_rows


class TestRegistry:
    def test_four_baselines(self):
        assert len(BASELINES) == 4
        assert {b.reference for b in BASELINES} == {
            "[13]", "[14]", "[1]", "[15]",
        }

    def test_lookup(self):
        assert baseline("zigiotto").author.startswith("Zigiotto")
        with pytest.raises(KeyError):
            baseline("nope")

    def test_technologies_resolve(self):
        for design in BASELINES:
            assert design.device().family == design.technology


class TestDesignStyles:
    def test_zigiotto_is_low_cost_logic_only(self):
        design = baseline("zigiotto")
        assert design.rom_in_logic
        assert design.device().memory is None  # stripped for mapping
        fit = design.fit()
        assert fit.memory_bits == 0  # matches the paper's "X" cell

    def test_hammercores_is_pipelined(self):
        design = baseline("hammercores")
        assert design.spec.pipelined
        assert design.spec.unrolled_rounds == 10

    def test_mroczkowski_round_per_clockish(self):
        design = baseline("mroczkowski")
        assert design.spec.sub_width == 128
        assert design.spec.key_schedule == "precomputed"


class TestTable3Shape:
    """We cannot match corrupted absolute numbers, but the *shape* of
    Table 3 must hold: who is big, who is fast, who is cheap."""

    ROWS = table3_rows()

    def test_all_rows_present(self):
        assert set(self.ROWS) == {
            "mroczkowski", "zigiotto", "panato-hp", "hammercores",
        }

    def test_zigiotto_is_slowest(self):
        mbps = {k: v["modeled_mbps"] for k, v in self.ROWS.items()}
        assert mbps["zigiotto"] == min(mbps.values())

    def test_zigiotto_reported_cells_survive(self):
        row = self.ROWS["zigiotto"]
        assert row["reported_lcs"] == 1965
        assert row["reported_mbps"] == pytest.approx(61.2)

    def test_hammercores_is_fastest_and_biggest(self):
        mbps = {k: v["modeled_mbps"] for k, v in self.ROWS.items()}
        lcs = {k: v["modeled_lcs"] for k, v in self.ROWS.items()}
        assert mbps["hammercores"] == max(mbps.values())
        assert lcs["hammercores"] == max(lcs.values())

    def test_high_performance_designs_beat_paper_throughput(self):
        """The paper's positioning: [1]/[15] are faster, the paper's
        IP is smaller.  Compare against the Acex encrypt fit."""
        from repro.arch.spec import paper_spec
        from repro.fpga.synthesis import compile_spec
        from repro.ip.control import Variant

        ours = compile_spec(paper_spec(Variant.ENCRYPT), "Acex1K")
        assert self.ROWS["panato-hp"]["modeled_mbps"] > \
            ours.throughput_mbps
        assert self.ROWS["hammercores"]["modeled_mbps"] > \
            ours.throughput_mbps

    def test_paper_design_smallest_memory_among_eab_designs(self):
        from repro.arch.spec import paper_spec
        from repro.fpga.synthesis import compile_spec
        from repro.ip.control import Variant

        ours = compile_spec(paper_spec(Variant.ENCRYPT), "Acex1K")
        for key in ("mroczkowski", "panato-hp", "hammercores"):
            assert ours.memory_bits < self.ROWS[key]["modeled_memory"]

    def test_lost_cells_marked_none(self):
        row = self.ROWS["mroczkowski"]
        assert row["reported_lcs"] is None
        assert row["reported_mbps"] is None
