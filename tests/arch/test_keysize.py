"""Tests for the AES-192/256 extension model."""

import pytest

from repro.arch.keysize import AES_VARIANTS, KeySizeVariant, \
    key_size_table
from repro.ip.control import Variant


class TestParameters:
    def test_only_aes_sizes(self):
        with pytest.raises(ValueError):
            KeySizeVariant(160)

    def test_round_counts_match_fips(self):
        assert KeySizeVariant(128).rounds == 10
        assert KeySizeVariant(192).rounds == 12
        assert KeySizeVariant(256).rounds == 14

    def test_latency_five_cycles_per_round(self):
        assert KeySizeVariant(128).block_latency_cycles == 50
        assert KeySizeVariant(192).block_latency_cycles == 60
        assert KeySizeVariant(256).block_latency_cycles == 70

    def test_setup_pass_lengths(self):
        # 4*(Nr+1) - Nk words, one per cycle.
        assert KeySizeVariant(128).key_setup_cycles == 40
        assert KeySizeVariant(192).key_setup_cycles == 46
        assert KeySizeVariant(256).key_setup_cycles == 52

    def test_key_load_beats(self):
        assert KeySizeVariant(128).key_load_beats == 1
        assert KeySizeVariant(192).key_load_beats == 2
        assert KeySizeVariant(256).key_load_beats == 2

    def test_register_growth(self):
        assert KeySizeVariant(128).extra_key_register_bits == 0
        assert KeySizeVariant(192).extra_key_register_bits == 128
        assert KeySizeVariant(256).extra_key_register_bits == 256


class TestAreaAndPerformance:
    def test_aes128_is_the_baseline(self):
        perf = KeySizeVariant(128).performance()
        assert perf["latency_ns"] == 700
        assert perf["logic_elements"] == 2114

    def test_bigger_keys_cost_modest_area(self):
        les128 = KeySizeVariant(128).performance()["logic_elements"]
        les256 = KeySizeVariant(256).performance()["logic_elements"]
        growth = (les256 - les128) / les128
        assert 0.05 < growth < 0.20  # key unit only, not the datapath

    def test_throughput_scales_with_rounds(self):
        t128 = KeySizeVariant(128).performance()["throughput_mbps"]
        t192 = KeySizeVariant(192).performance()["throughput_mbps"]
        t256 = KeySizeVariant(256).performance()["throughput_mbps"]
        assert t128 > t192 > t256
        assert t192 == pytest.approx(t128 * 50 / 60, rel=1e-6)
        assert t256 == pytest.approx(t128 * 50 / 70, rel=1e-6)

    def test_clock_unchanged(self):
        # Nk never appears on a critical path.
        for option in AES_VARIANTS:
            assert option.performance()["clock_ns"] == 14

    def test_cyclone_numbers(self):
        perf = KeySizeVariant(192).performance(family="Cyclone")
        assert perf["clock_ns"] == 10
        assert perf["latency_ns"] == 600


class TestBehavioralGrounding:
    """The cycle model's Nr values must match the verified cipher."""

    @pytest.mark.parametrize("bits,rounds", [(128, 10), (192, 12),
                                             (256, 14)])
    def test_rounds_match_cipher(self, bits, rounds):
        from repro.aes.cipher import Rijndael

        cipher = Rijndael(bytes(bits // 8), block_bytes=16)
        assert cipher.rounds == rounds
        assert KeySizeVariant(bits).rounds == rounds


class TestRendering:
    def test_table_lists_all_versions(self):
        text = key_size_table()
        for token in ("AES-128", "AES-192", "AES-256"):
            assert token in text

    def test_table_for_decrypt_device(self):
        assert "decrypt" in key_size_table(Variant.DECRYPT)
