"""Tests for the architecture design-space spec and cycle model."""

import pytest

from repro.arch.spec import (
    ArchitectureSpec,
    PAPER_SPECS,
    paper_spec,
    width_sweep_specs,
)
from repro.ip.control import Variant


class TestValidation:
    def test_legal_widths_only(self):
        with pytest.raises(ValueError):
            ArchitectureSpec("t", Variant.ENCRYPT, sub_width=24)
        with pytest.raises(ValueError):
            ArchitectureSpec("t", Variant.ENCRYPT, wide_width=64)

    def test_wide_at_least_sub(self):
        with pytest.raises(ValueError):
            ArchitectureSpec("t", Variant.ENCRYPT, sub_width=128,
                             wide_width=32)

    def test_key_schedule_values(self):
        with pytest.raises(ValueError):
            ArchitectureSpec("t", Variant.ENCRYPT, key_schedule="magic")

    def test_unroll_bounds(self):
        with pytest.raises(ValueError):
            ArchitectureSpec("t", Variant.ENCRYPT, unrolled_rounds=11)

    def test_pipelining_needs_unroll(self):
        with pytest.raises(ValueError):
            ArchitectureSpec("t", Variant.ENCRYPT, pipelined=True)

    def test_renamed_copy(self):
        spec = paper_spec(Variant.ENCRYPT)
        other = spec.renamed("x")
        assert other.name == "x"
        assert other.sub_width == spec.sub_width


class TestPaperCycleModel:
    def test_paper_design_five_cycles(self):
        spec = paper_spec(Variant.ENCRYPT)
        assert spec.sub_passes == 4
        assert spec.wide_passes == 1
        assert spec.cycles_per_round == 5
        assert spec.block_latency_cycles == 50

    def test_all_32bit_is_twelve_cycles(self):
        # §4: "from 12 (in the case of all functions using 32)".
        spec = ArchitectureSpec("t", Variant.ENCRYPT, sub_width=32,
                                wide_width=32)
        assert spec.cycles_per_round == 12

    def test_sync_rom_six_cycles(self):
        spec = paper_spec(Variant.ENCRYPT, sync_rom=True)
        assert spec.cycles_per_round == 6
        assert spec.block_latency_cycles == 60

    def test_paper_specs_registry(self):
        assert set(PAPER_SPECS) == {"encrypt", "decrypt", "both"}
        assert all(s.sub_width == 32 for s in PAPER_SPECS.values())


class TestKeyScheduleBottleneck:
    """§6: 'the key generation is slower than the cipher part'."""

    def test_128bit_capped_by_key_schedule(self):
        spec = ArchitectureSpec("t", Variant.ENCRYPT, sub_width=128,
                                wide_width=128)
        assert spec.cipher_cycles_per_round == 2
        assert spec.key_cycles_per_round == 4
        assert spec.cycles_per_round == 4  # key schedule wins

    def test_precomputed_keys_remove_cap(self):
        spec = ArchitectureSpec("t", Variant.ENCRYPT, sub_width=128,
                                wide_width=128,
                                key_schedule="precomputed")
        assert spec.cycles_per_round == 2

    def test_paper_design_not_key_limited(self):
        spec = paper_spec(Variant.ENCRYPT)
        assert spec.cipher_cycles_per_round >= spec.key_cycles_per_round


class TestWidthSpectrum:
    def test_cycle_counts_monotone_in_width(self):
        # The wide stage never narrows below 32 bits (MixColumn
        # consumes whole columns), so the 8-bit point is 16 ByteSub
        # passes + 8 column passes = 24 cycles/round.
        specs = {s.name: s for s in width_sweep_specs()}
        assert specs["uniform-8-encrypt"].cycles_per_round == 24
        assert specs["uniform-16-encrypt"].cycles_per_round == 16
        assert specs["uniform-32-encrypt"].cycles_per_round == 12
        assert specs["mixed-32-128-encrypt"].cycles_per_round == 5

    def test_sbox_memory_scales_with_width(self):
        specs = {s.name: s for s in width_sweep_specs()}
        assert specs["uniform-8-encrypt"].rom_bits == 2048 + 8192
        assert specs["mixed-32-128-encrypt"].rom_bits == 16384
        assert specs["full-128-encrypt"].rom_bits == 16 * 2048 + 8192


class TestThroughputModel:
    def test_iterative_throughput_period(self):
        spec = paper_spec(Variant.ENCRYPT)
        assert spec.cycles_per_block_throughput == 50

    def test_pipelined_throughput_period(self):
        spec = ArchitectureSpec("t", Variant.ENCRYPT, sub_width=128,
                                wide_width=128,
                                key_schedule="precomputed",
                                unrolled_rounds=10, pipelined=True)
        assert spec.block_latency_cycles == 10
        assert spec.cycles_per_block_throughput == 1

    def test_both_variant_doubles_sboxes(self):
        enc = paper_spec(Variant.ENCRYPT)
        both = paper_spec(Variant.BOTH)
        assert both.data_sbox_count == 2 * enc.data_sbox_count
        assert both.kstran_sbox_count == 2 * enc.kstran_sbox_count
        assert both.rom_bits == 32768
