"""Span tracing: Chrome-trace validity and no-op-when-disabled."""

import json
import threading

import pytest

from repro.obs.tracing import (
    Tracer,
    _NULL_SPAN,
    active_tracer,
    disable_tracing,
    enable_tracing,
    trace_instant,
    trace_span,
)


@pytest.fixture(autouse=True)
def _no_global_tracer():
    """Each test starts and ends with tracing disabled."""
    disable_tracing()
    yield
    disable_tracing()


class TestTracer:
    def test_span_records_complete_event(self):
        tracer = Tracer()
        with tracer.span("work", category="test", items=3):
            pass
        (event,) = tracer.events()
        assert event["name"] == "work"
        assert event["ph"] == "X"
        assert event["cat"] == "test"
        assert event["args"] == {"items": 3}
        assert event["dur"] >= 0
        assert event["tid"] == threading.get_ident()

    def test_instant_event(self):
        tracer = Tracer()
        tracer.instant("marker")
        (event,) = tracer.events()
        assert event["ph"] == "i"

    def test_to_json_is_chrome_trace_loadable(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        events = json.loads(tracer.to_json())
        assert isinstance(events, list) and len(events) == 2
        for event in events:
            assert {"name", "ph", "ts", "pid", "tid"} <= set(event)
        # Inner span closed first, so it is recorded first and its
        # timestamp is not earlier than the outer span's start.
        assert events[0]["name"] == "b"
        assert events[0]["ts"] >= events[1]["ts"]

    def test_write_and_clear(self, tmp_path):
        tracer = Tracer()
        with tracer.span("x"):
            pass
        out = tmp_path / "trace.json"
        tracer.write(out)
        assert json.loads(out.read_text())[0]["name"] == "x"
        tracer.clear()
        assert tracer.events() == []

    def test_thread_safety(self):
        tracer = Tracer()

        def worker():
            for _ in range(50):
                with tracer.span("t"):
                    pass

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(tracer.events()) == 200


class TestGlobalTracer:
    def test_disabled_by_default_returns_null_span(self):
        assert active_tracer() is None
        assert trace_span("anything") is _NULL_SPAN
        with trace_span("anything"):
            pass  # must be a working no-op context manager
        trace_instant("nothing")  # no-op, no error

    def test_enable_records_and_disable_keeps_events(self):
        tracer = enable_tracing()
        assert active_tracer() is tracer
        with trace_span("job", blocks=1):
            pass
        trace_instant("tick")
        returned = disable_tracing()
        assert returned is tracer
        assert active_tracer() is None
        names = [e["name"] for e in tracer.events()]
        assert names == ["job", "tick"]

    def test_enable_is_idempotent(self):
        first = enable_tracing()
        assert enable_tracing() is first
