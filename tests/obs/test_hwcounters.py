"""Hardware counters: the observed run proves the paper's numbers."""

import pytest

from repro.ip.control import Variant
from repro.ip.testbench import Testbench
from repro.obs.hwcounters import (
    MAX_BLOCK_RECORDS,
    HwCounters,
    expected_counters,
)
from repro.obs.metrics import MetricsRegistry

KEY = bytes(range(16))
BLOCK = bytes.fromhex("00112233445566778899aabbccddeeff")


def _run(variant, sync_rom, blocks, encrypt=True):
    bench = Testbench(variant=variant, sync_rom=sync_rom)
    bench.load_key(KEY)
    for _ in range(blocks):
        if encrypt:
            bench.encrypt(BLOCK)
        else:
            bench.decrypt(BLOCK)
    return bench


class TestPaperInvariants:
    """The acceptance criteria of the observability issue."""

    def test_single_encrypt_is_50_cycles_10_rounds_of_5(self):
        bench = _run(Variant.ENCRYPT, False, 1)
        counters = bench.core.counters
        (record,) = counters.block_records
        assert record.cycles == 50
        assert record.rounds == 10
        assert record.events_per_round == (5,) * 10
        assert counters.run_cycles == 50
        assert counters.bytesub_cycles == 40
        assert counters.mix_cycles == 10
        assert counters.key_words == 40

    def test_decrypt_setup_pass_is_40_cycles(self):
        bench = Testbench(variant=Variant.DECRYPT)
        bench.load_key(KEY)
        counters = bench.core.counters
        assert counters.setup_cycles == 40
        assert counters.setup_passes == 1
        assert counters.key_words == 40

    def test_sync_rom_round_is_6_events(self):
        bench = _run(Variant.ENCRYPT, True, 1)
        (record,) = bench.core.counters.block_records
        assert record.cycles == 60
        assert record.events_per_round == (6,) * 10
        assert bench.core.counters.rom_issue_cycles == 10

    @pytest.mark.parametrize("variant", list(Variant))
    @pytest.mark.parametrize("sync_rom", (False, True))
    def test_every_flavour_matches_the_model(self, variant, sync_rom):
        blocks = 2
        bench = _run(variant, sync_rom, blocks,
                     encrypt=variant.can_encrypt)
        counters = bench.core.counters
        expected = expected_counters(variant, sync_rom, blocks)
        for name in ("blocks", "rounds", "bytesub_cycles",
                     "mix_cycles", "rom_issue_cycles", "run_cycles",
                     "setup_cycles", "setup_passes", "key_words"):
            assert getattr(counters, name) == expected[name], name
        for record in counters.block_records:
            assert record.cycles == expected["block_cycles"]
            assert set(record.events_per_round) == \
                {expected["events_per_round"]}

    def test_decrypt_direction_recorded(self):
        bench = _run(Variant.DECRYPT, False, 1, encrypt=False)
        (record,) = bench.core.counters.block_records
        assert record.direction == "decrypt"

    def test_idle_cycles_accumulate_between_blocks(self):
        bench = Testbench(variant=Variant.ENCRYPT)
        bench.load_key(KEY)
        for _ in range(5):
            bench.simulator.step()
        counters = bench.core.counters
        assert counters.idle_cycles >= 5
        assert counters.cycles == counters.idle_cycles + \
            counters.run_cycles + counters.setup_cycles


class TestCounterMechanics:
    def test_block_record_cap(self):
        counters = HwCounters()
        for i in range(MAX_BLOCK_RECORDS + 10):
            counters.block_start(i * 50, "encrypt")
            counters.block_end(i * 50 + 50)
        assert counters.blocks == MAX_BLOCK_RECORDS + 10
        assert len(counters.block_records) == MAX_BLOCK_RECORDS

    def test_block_end_without_start_counts_total_only(self):
        counters = HwCounters()
        counters.block_end(99)
        assert counters.blocks == 1
        assert counters.block_records == []

    def test_snapshot_is_jsonable(self):
        import json
        bench = _run(Variant.ENCRYPT, False, 1)
        snap = bench.core.counters.snapshot()
        doc = json.loads(json.dumps(snap))
        assert doc["blocks"] == 1
        assert doc["block_records"][0]["cycles"] == 50

    def test_export_metrics_publishes_totals(self):
        bench = _run(Variant.ENCRYPT, False, 2)
        registry = MetricsRegistry()
        bench.core.counters.export_metrics(registry, "encrypt")
        metric = registry.get("repro_ip_run_cycles_total")
        assert metric.labels(variant="encrypt").value == 100
        blocks = registry.get("repro_ip_blocks_total")
        assert blocks.labels(variant="encrypt").value == 2

    def test_legacy_core_attributes_still_tracked(self):
        bench = _run(Variant.ENCRYPT, False, 2)
        assert bench.core.blocks_processed == 2
        assert bench.core.counters.blocks == 2


class TestExpectedCounters:
    def test_encrypt_only_has_no_setup(self):
        exp = expected_counters(Variant.ENCRYPT, False, 3)
        assert exp["setup_cycles"] == 0
        assert exp["setup_passes"] == 0
        assert exp["key_words"] == 120

    def test_decrypt_capable_includes_setup_words(self):
        exp = expected_counters(Variant.BOTH, False, 3, key_loads=2)
        assert exp["setup_cycles"] == 80
        assert exp["setup_passes"] == 2
        assert exp["key_words"] == 40 * 5  # 3 blocks + 2 passes

    def test_sync_rom_scales_latency(self):
        exp = expected_counters(Variant.DECRYPT, True, 1)
        assert exp["block_cycles"] == 60
        assert exp["events_per_round"] == 6
        assert exp["rom_issue_cycles"] == 10
        assert exp["setup_cycles"] == 50
