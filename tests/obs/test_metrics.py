"""Metrics registry: semantics plus Prometheus-exposition validity."""

import json
import math
import re

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    QUANTILE_BUCKETS,
    MetricError,
    MetricsRegistry,
    WindowedQuantiles,
    WindowedQuantileSet,
    global_registry,
    render_prometheus,
    reset_global_registry,
)


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_starts_at_zero_and_increments(self, registry):
        c = registry.counter("ops_total", "ops")
        assert c.value == 0
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_rejects_negative_increment(self, registry):
        c = registry.counter("ops_total", "ops")
        with pytest.raises(MetricError):
            c.inc(-1)

    def test_labeled_children_are_independent(self, registry):
        c = registry.counter("ops_total", "ops", labels=("mode",))
        c.labels(mode="ecb").inc(3)
        c.labels(mode="ctr").inc()
        assert c.labels(mode="ecb").value == 3
        assert c.labels(mode="ctr").value == 1

    def test_labeled_metric_rejects_bare_inc(self, registry):
        c = registry.counter("ops_total", "ops", labels=("mode",))
        with pytest.raises(MetricError):
            c.inc()

    def test_label_set_must_match_schema(self, registry):
        c = registry.counter("ops_total", "ops", labels=("mode",))
        with pytest.raises(MetricError):
            c.labels(direction="enc")


class TestGauge:
    def test_set_inc_dec(self, registry):
        g = registry.gauge("workers", "worker count")
        g.set(4)
        g.inc()
        g.dec(2)
        assert g.value == 3


class TestHistogram:
    def test_buckets_cumulative(self, registry):
        h = registry.histogram("lat_seconds", "latency",
                               buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        h.observe(5.0)
        child = h.children()[0]
        assert child.cumulative() == [1, 2, 3]
        assert child.count == 3
        assert child.sum == pytest.approx(5.55)

    def test_rejects_unsorted_buckets(self, registry):
        with pytest.raises(MetricError):
            registry.histogram("h", "x", buckets=(1.0, 0.1))

    def test_default_buckets_are_sane(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)
        assert len(set(DEFAULT_BUCKETS)) == len(DEFAULT_BUCKETS)


class TestRegistry:
    def test_get_or_create_returns_same_object(self, registry):
        a = registry.counter("x_total", "x")
        b = registry.counter("x_total", "x")
        assert a is b

    def test_kind_collision_raises(self, registry):
        registry.counter("x_total", "x")
        with pytest.raises(MetricError):
            registry.gauge("x_total", "x")

    def test_label_schema_collision_raises(self, registry):
        registry.counter("x_total", "x", labels=("a",))
        with pytest.raises(MetricError):
            registry.counter("x_total", "x", labels=("b",))

    def test_invalid_name_rejected(self, registry):
        with pytest.raises(MetricError):
            registry.counter("0bad-name", "x")

    def test_reset_zeroes_but_keeps_registration(self, registry):
        c = registry.counter("x_total", "x")
        c.inc(7)
        registry.reset()
        # The same bound object keeps working from zero.
        assert c.value == 0
        c.inc()
        assert c.value == 1

    def test_global_registry_reset(self):
        g = global_registry()
        c = g.counter("test_global_reset_total", "scratch")
        c.inc(2)
        reset_global_registry()
        assert c.value == 0


# The exposition lines the 0.0.4 text format allows (plus HELP/TYPE).
_SAMPLE_RE = re.compile(
    r'^[a-zA-Z_:][a-zA-Z0-9_:]*'
    r'(\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"'
    r'(,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")*\})? '
    r'(?:[0-9.eE+-]+|\+Inf|-Inf|NaN)$'
)


def _parse_prometheus(text):
    """A strict little parser for the text exposition format.

    Returns {metric_name: {"type": ..., "samples": [(name, labels,
    value)]}} and raises AssertionError on any malformed line — the
    validity check the acceptance criteria ask for.
    """
    families = {}
    current = None
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("# HELP "):
            name = line.split()[2]
            families.setdefault(name, {"type": None, "samples": []})
            current = name
        elif line.startswith("# TYPE "):
            _, _, name, kind = line.split(maxsplit=3)
            assert kind in ("counter", "gauge", "histogram", "untyped")
            families.setdefault(name, {"type": None, "samples": []})
            families[name]["type"] = kind
            current = name
        else:
            assert _SAMPLE_RE.match(line), f"malformed line: {line!r}"
            name = re.split(r"[{ ]", line, maxsplit=1)[0]
            value_text = line.rsplit(" ", 1)[1]
            value = math.inf if value_text == "+Inf" \
                else float(value_text)
            labels = {}
            if "{" in line:
                inner = line[line.index("{") + 1:line.rindex("}")]
                for pair in re.findall(
                        r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"',
                        inner):
                    labels[pair[0]] = pair[1]
            assert current is not None
            families[current]["samples"].append((name, labels, value))
    return families


class TestPrometheusExposition:
    def test_render_is_valid_and_complete(self, registry):
        c = registry.counter("req_total", "requests",
                             labels=("mode",))
        c.labels(mode="ecb").inc(2)
        registry.gauge("temp", "temperature").set(21.5)
        h = registry.histogram("lat_seconds", "latency",
                               buckets=(0.1, 1.0))
        h.observe(0.05)
        text = registry.render_prometheus()
        families = _parse_prometheus(text)
        assert families["req_total"]["type"] == "counter"
        assert families["temp"]["type"] == "gauge"
        assert families["lat_seconds"]["type"] == "histogram"
        samples = families["req_total"]["samples"]
        assert ("req_total", {"mode": "ecb"}, 2.0) in samples
        hist = families["lat_seconds"]["samples"]
        buckets = [s for s in hist if s[0] == "lat_seconds_bucket"]
        assert [s[2] for s in buckets] == [1.0, 1.0, 1.0]
        assert buckets[-1][1]["le"] == "+Inf"
        assert ("lat_seconds_count", {}, 1.0) in hist

    def test_label_values_escaped(self, registry):
        c = registry.counter("x_total", "x", labels=("path",))
        c.labels(path='a"b\\c\nd').inc()
        text = registry.render_prometheus()
        assert '\\"' in text and "\\\\" in text and "\\n" in text
        _parse_prometheus(text)  # still parses

    def test_multi_registry_concatenation(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("a_total", "a").inc()
        b.counter("b_total", "b").inc()
        families = _parse_prometheus(render_prometheus([a, b]))
        assert set(families) == {"a_total", "b_total"}

    def test_each_escape_class_round_trips(self, registry):
        # One label value per escape class, asserted individually:
        # the combined test above can hide a class regression.
        cases = {"back": "a\\b", "quote": 'a"b', "newline": "a\nb"}
        c = registry.counter("esc_total", "e", labels=("which",))
        for value in cases.values():
            c.labels(which=value).inc()
        text = registry.render_prometheus()
        assert 'which="a\\\\b"' in text
        assert 'which="a\\"b"' in text
        assert 'which="a\\nb"' in text
        assert "\na" not in text.split("# TYPE")[1]  # no raw newline
        families = _parse_prometheus(text)
        assert len(families["esc_total"]["samples"]) == 3

    def test_nonfinite_gauge_values_format(self, registry):
        g = registry.gauge("edge", "edge values", labels=("case",))
        g.labels(case="pinf").set(math.inf)
        g.labels(case="ninf").set(-math.inf)
        g.labels(case="nan").set(math.nan)
        text = registry.render_prometheus()
        assert 'edge{case="pinf"} +Inf' in text
        assert 'edge{case="ninf"} -Inf' in text
        assert 'edge{case="nan"} NaN' in text
        _parse_prometheus(text)  # every line stays 0.0.4-legal

    def test_empty_registry_renders_empty(self):
        registry = MetricsRegistry()
        assert registry.render_prometheus() == ""
        assert _parse_prometheus(registry.render_prometheus()) == {}
        assert json.loads(registry.render_json()) == {}

    def test_registered_but_unobserved_still_renders_header(self):
        registry = MetricsRegistry()
        registry.counter("quiet_total", "never incremented",
                         labels=("op",))
        text = registry.render_prometheus()
        # HELP/TYPE appear; no samples until a child exists.
        assert "# TYPE quiet_total counter" in text
        assert "quiet_total{" not in text

    def test_render_deterministic_across_insertion_order(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        for reg, order in ((a, ("x", "y", "z")),
                           (b, ("z", "x", "y"))):
            c = reg.counter("det_total", "d", labels=("op",))
            g = reg.gauge("det_gauge", "d", labels=("op",))
            for op in order:
                c.labels(op=op).inc(len(op))
                g.labels(op=op).set(1.5)
        assert a.render_prometheus() == b.render_prometheus()
        assert a.render_json() == b.render_json()


class TestJsonSnapshot:
    def test_round_trips_through_json(self, registry):
        registry.counter("x_total", "x").inc(3)
        h = registry.histogram("h_seconds", "h", buckets=(1.0,))
        h.observe(0.5)
        doc = json.loads(registry.render_json())
        assert doc["x_total"]["samples"][0]["value"] == 3
        assert doc["h_seconds"]["samples"][0]["count"] == 1

    def test_prefix_filter(self, registry):
        registry.counter("keep_total", "k").inc()
        registry.counter("drop_total", "d").inc()
        snap = registry.snapshot(prefix="keep_")
        assert set(snap) == {"keep_total"}


class TestWindowedQuantiles:
    def test_quantiles_within_one_bucket_of_truth(self):
        w = WindowedQuantiles(window_s=60.0, slots=6)
        now = 10_000.0
        for i in range(1, 1001):  # 1ms .. 1s uniform
            w.observe(i / 1000.0, now=now)
        # The estimator's documented bound: one geometric step
        # (ratio 2**0.25, ~19%) of relative error.
        for q, truth in ((0.50, 0.500), (0.95, 0.950),
                         (0.99, 0.990)):
            estimate = w.quantile(q, now=now)
            assert truth / 1.2 <= estimate <= truth * 1.2, \
                (q, estimate)

    def test_empty_window_is_nan_and_none(self):
        w = WindowedQuantiles()
        assert math.isnan(w.quantile(0.5, now=123.0))
        snap = w.snapshot(now=123.0)
        assert snap["count"] == 0
        assert snap["p50_s"] is None
        assert snap["max_s"] is None

    def test_observations_age_out_of_the_window(self):
        w = WindowedQuantiles(window_s=60.0, slots=6)
        now = 5_000.0
        w.observe(0.5, now=now)
        assert w.snapshot(now=now)["count"] == 1
        # Still visible inside the window, gone past it.
        assert w.snapshot(now=now + 50.0)["count"] == 1
        assert w.snapshot(now=now + 61.0)["count"] == 0
        assert math.isnan(w.quantile(0.5, now=now + 61.0))

    def test_sliding_not_resetting(self):
        # A ring of sub-histograms slides: old slots drop one at a
        # time, they do not vanish all at once.
        w = WindowedQuantiles(window_s=60.0, slots=6)
        base = 60_000.0
        for slot in range(6):
            w.observe(0.01, now=base + slot * 10.0)
        assert w.snapshot(now=base + 59.0)["count"] == 6
        # 15s later the two oldest 10s slots have aged out.
        assert w.snapshot(now=base + 75.0)["count"] == 4

    def test_overflow_bucket_reports_observed_max(self):
        w = WindowedQuantiles(bounds=(0.001, 0.01))
        now = 777.0
        w.observe(5.0, now=now)  # beyond every bound
        assert w.quantile(0.99, now=now) == 5.0
        assert w.snapshot(now=now)["max_s"] == 5.0

    def test_slo_burn_rate(self):
        w = WindowedQuantiles(slo_threshold_s=0.1)
        now = 900.0
        for value in (0.05, 0.05, 0.2, 0.3):
            w.observe(value, now=now)
        snap = w.snapshot(now=now)
        assert snap["slo_breaches"] == 2
        assert snap["burn_rate"] == pytest.approx(0.5)

    def test_rejects_bad_parameters(self):
        with pytest.raises(MetricError):
            WindowedQuantiles(window_s=0.0)
        with pytest.raises(MetricError):
            WindowedQuantiles(bounds=(2.0, 1.0))
        with pytest.raises(MetricError):
            WindowedQuantiles().quantile(1.5)

    def test_default_bounds_are_sane(self):
        assert list(QUANTILE_BUCKETS) == sorted(QUANTILE_BUCKETS)
        assert len(set(QUANTILE_BUCKETS)) == len(QUANTILE_BUCKETS)
        assert QUANTILE_BUCKETS[0] <= 1e-4   # resolves loopback
        assert QUANTILE_BUCKETS[-1] >= 60.0  # covers slow requests


class TestWindowedQuantileSet:
    def test_renders_parseable_gauge_families(self):
        s = WindowedQuantileSet("req_window_seconds", "windowed",
                                label_names=("op",),
                                slo_threshold_s=0.1)
        now = 4_000.0
        s.labels(op="encrypt").observe(0.002, now=now)
        s.labels(op="encrypt").observe(0.3, now=now)
        families = _parse_prometheus(s.render_prometheus(now=now))
        assert families["req_window_seconds"]["type"] == "gauge"
        quantiles = {
            sample[1]["quantile"]
            for sample in families["req_window_seconds"]["samples"]
        }
        assert quantiles == {"0.5", "0.95", "0.99"}
        counts = families["req_window_seconds_count"]["samples"]
        assert counts == [("req_window_seconds_count",
                           {"op": "encrypt"}, 2.0)]
        burn = families["req_window_seconds_burn_rate"]["samples"]
        assert burn[0][2] == pytest.approx(0.5)

    def test_empty_window_renders_no_quantile_samples(self):
        s = WindowedQuantileSet("idle_window_seconds", "windowed")
        s.labels()  # child exists, nothing observed
        families = _parse_prometheus(
            s.render_prometheus(now=1_000_000.0))
        assert families["idle_window_seconds"]["samples"] == []
        counts = families["idle_window_seconds_count"]["samples"]
        assert counts[0][2] == 0.0

    def test_render_deterministic_across_insertion_order(self):
        now = 8_000.0
        a = WindowedQuantileSet("w_seconds", "w", label_names=("op",))
        b = WindowedQuantileSet("w_seconds", "w", label_names=("op",))
        for s, order in ((a, ("x", "y")), (b, ("y", "x"))):
            for op in order:
                s.labels(op=op).observe(0.01, now=now)
        assert a.render_prometheus(now=now) == \
            b.render_prometheus(now=now)
        assert a.snapshot(now=now) == b.snapshot(now=now)

    def test_snapshot_is_json_able(self):
        s = WindowedQuantileSet("j_seconds", "j", label_names=("op",),
                                slo_threshold_s=1.0)
        s.labels(op="ping").observe(0.5, now=2_000.0)
        doc = json.loads(json.dumps(s.snapshot(now=2_000.0)))
        sample = doc["samples"][0]
        assert sample["labels"] == {"op": "ping"}
        assert sample["count"] == 1
        assert sample["burn_rate"] == 0.0

    def test_label_schema_enforced(self):
        s = WindowedQuantileSet("s_seconds", "s", label_names=("op",))
        with pytest.raises(MetricError):
            s.labels(wrong="x")
