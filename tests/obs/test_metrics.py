"""Metrics registry: semantics plus Prometheus-exposition validity."""

import json
import math
import re

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    MetricError,
    MetricsRegistry,
    global_registry,
    render_prometheus,
    reset_global_registry,
)


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_starts_at_zero_and_increments(self, registry):
        c = registry.counter("ops_total", "ops")
        assert c.value == 0
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_rejects_negative_increment(self, registry):
        c = registry.counter("ops_total", "ops")
        with pytest.raises(MetricError):
            c.inc(-1)

    def test_labeled_children_are_independent(self, registry):
        c = registry.counter("ops_total", "ops", labels=("mode",))
        c.labels(mode="ecb").inc(3)
        c.labels(mode="ctr").inc()
        assert c.labels(mode="ecb").value == 3
        assert c.labels(mode="ctr").value == 1

    def test_labeled_metric_rejects_bare_inc(self, registry):
        c = registry.counter("ops_total", "ops", labels=("mode",))
        with pytest.raises(MetricError):
            c.inc()

    def test_label_set_must_match_schema(self, registry):
        c = registry.counter("ops_total", "ops", labels=("mode",))
        with pytest.raises(MetricError):
            c.labels(direction="enc")


class TestGauge:
    def test_set_inc_dec(self, registry):
        g = registry.gauge("workers", "worker count")
        g.set(4)
        g.inc()
        g.dec(2)
        assert g.value == 3


class TestHistogram:
    def test_buckets_cumulative(self, registry):
        h = registry.histogram("lat_seconds", "latency",
                               buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        h.observe(5.0)
        child = h.children()[0]
        assert child.cumulative() == [1, 2, 3]
        assert child.count == 3
        assert child.sum == pytest.approx(5.55)

    def test_rejects_unsorted_buckets(self, registry):
        with pytest.raises(MetricError):
            registry.histogram("h", "x", buckets=(1.0, 0.1))

    def test_default_buckets_are_sane(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)
        assert len(set(DEFAULT_BUCKETS)) == len(DEFAULT_BUCKETS)


class TestRegistry:
    def test_get_or_create_returns_same_object(self, registry):
        a = registry.counter("x_total", "x")
        b = registry.counter("x_total", "x")
        assert a is b

    def test_kind_collision_raises(self, registry):
        registry.counter("x_total", "x")
        with pytest.raises(MetricError):
            registry.gauge("x_total", "x")

    def test_label_schema_collision_raises(self, registry):
        registry.counter("x_total", "x", labels=("a",))
        with pytest.raises(MetricError):
            registry.counter("x_total", "x", labels=("b",))

    def test_invalid_name_rejected(self, registry):
        with pytest.raises(MetricError):
            registry.counter("0bad-name", "x")

    def test_reset_zeroes_but_keeps_registration(self, registry):
        c = registry.counter("x_total", "x")
        c.inc(7)
        registry.reset()
        # The same bound object keeps working from zero.
        assert c.value == 0
        c.inc()
        assert c.value == 1

    def test_global_registry_reset(self):
        g = global_registry()
        c = g.counter("test_global_reset_total", "scratch")
        c.inc(2)
        reset_global_registry()
        assert c.value == 0


# The exposition lines the 0.0.4 text format allows (plus HELP/TYPE).
_SAMPLE_RE = re.compile(
    r'^[a-zA-Z_:][a-zA-Z0-9_:]*'
    r'(\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"'
    r'(,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")*\})? '
    r'(?:[0-9.eE+-]+|\+Inf|-Inf|NaN)$'
)


def _parse_prometheus(text):
    """A strict little parser for the text exposition format.

    Returns {metric_name: {"type": ..., "samples": [(name, labels,
    value)]}} and raises AssertionError on any malformed line — the
    validity check the acceptance criteria ask for.
    """
    families = {}
    current = None
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("# HELP "):
            name = line.split()[2]
            families.setdefault(name, {"type": None, "samples": []})
            current = name
        elif line.startswith("# TYPE "):
            _, _, name, kind = line.split(maxsplit=3)
            assert kind in ("counter", "gauge", "histogram", "untyped")
            families.setdefault(name, {"type": None, "samples": []})
            families[name]["type"] = kind
            current = name
        else:
            assert _SAMPLE_RE.match(line), f"malformed line: {line!r}"
            name = re.split(r"[{ ]", line, maxsplit=1)[0]
            value_text = line.rsplit(" ", 1)[1]
            value = math.inf if value_text == "+Inf" \
                else float(value_text)
            labels = {}
            if "{" in line:
                inner = line[line.index("{") + 1:line.rindex("}")]
                for pair in re.findall(
                        r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"',
                        inner):
                    labels[pair[0]] = pair[1]
            assert current is not None
            families[current]["samples"].append((name, labels, value))
    return families


class TestPrometheusExposition:
    def test_render_is_valid_and_complete(self, registry):
        c = registry.counter("req_total", "requests",
                             labels=("mode",))
        c.labels(mode="ecb").inc(2)
        registry.gauge("temp", "temperature").set(21.5)
        h = registry.histogram("lat_seconds", "latency",
                               buckets=(0.1, 1.0))
        h.observe(0.05)
        text = registry.render_prometheus()
        families = _parse_prometheus(text)
        assert families["req_total"]["type"] == "counter"
        assert families["temp"]["type"] == "gauge"
        assert families["lat_seconds"]["type"] == "histogram"
        samples = families["req_total"]["samples"]
        assert ("req_total", {"mode": "ecb"}, 2.0) in samples
        hist = families["lat_seconds"]["samples"]
        buckets = [s for s in hist if s[0] == "lat_seconds_bucket"]
        assert [s[2] for s in buckets] == [1.0, 1.0, 1.0]
        assert buckets[-1][1]["le"] == "+Inf"
        assert ("lat_seconds_count", {}, 1.0) in hist

    def test_label_values_escaped(self, registry):
        c = registry.counter("x_total", "x", labels=("path",))
        c.labels(path='a"b\\c\nd').inc()
        text = registry.render_prometheus()
        assert '\\"' in text and "\\\\" in text and "\\n" in text
        _parse_prometheus(text)  # still parses

    def test_multi_registry_concatenation(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("a_total", "a").inc()
        b.counter("b_total", "b").inc()
        families = _parse_prometheus(render_prometheus([a, b]))
        assert set(families) == {"a_total", "b_total"}


class TestJsonSnapshot:
    def test_round_trips_through_json(self, registry):
        registry.counter("x_total", "x").inc(3)
        h = registry.histogram("h_seconds", "h", buckets=(1.0,))
        h.observe(0.5)
        doc = json.loads(registry.render_json())
        assert doc["x_total"]["samples"][0]["value"] == 3
        assert doc["h_seconds"]["samples"][0]["count"] == 1

    def test_prefix_filter(self, registry):
        registry.counter("keep_total", "k").inc()
        registry.counter("drop_total", "d").inc()
        snap = registry.snapshot(prefix="keep_")
        assert set(snap) == {"keep_total"}
