"""StatsReport: collection and the four output formats."""

import json

import pytest

from repro.obs.report import collect_stats
from tests.obs.test_metrics import _parse_prometheus


@pytest.fixture(scope="module")
def encrypt_report():
    return collect_stats(variant="encrypt", blocks=2)


class TestCollectStats:
    def test_observed_matches_expected(self, encrypt_report):
        snap = encrypt_report.hw_snapshot
        exp = encrypt_report.expected
        assert snap["run_cycles"] == exp["run_cycles"] == 100
        assert snap["rounds"] == exp["rounds"] == 20

    def test_decrypt_only_device_decrypts(self):
        report = collect_stats(variant="decrypt", blocks=1)
        assert report.hw_snapshot["block_records"][0]["direction"] \
            == "decrypt"
        assert report.setup_latency > 1  # setup pass ran

    def test_rejects_bad_blocks(self):
        with pytest.raises(ValueError):
            collect_stats(blocks=0)

    def test_rejects_bad_variant(self):
        with pytest.raises(ValueError):
            collect_stats(variant="sideways")


class TestRenderFormats:
    def test_text_mentions_invariants(self, encrypt_report):
        text = encrypt_report.render("text")
        assert "per-block latency: [50] cycles (model: 50)" in text
        assert "sub-events per round: [5] (model: 5)" in text

    def test_prom_is_valid_exposition(self, encrypt_report):
        families = _parse_prometheus(encrypt_report.render("prom"))
        samples = families["repro_ip_run_cycles_total"]["samples"]
        assert samples[0][1] == {"variant": "encrypt"}
        assert samples[0][2] == 100.0

    def test_json_document(self, encrypt_report):
        doc = json.loads(encrypt_report.render("json"))
        assert doc["run"]["variant"] == "encrypt"
        assert doc["hardware"]["run_cycles"] == 100
        assert doc["expected"]["block_cycles"] == 50
        assert "repro_ip_cycles_total" in doc["hw_metrics"]

    def test_chrome_trace_loadable(self, encrypt_report):
        events = json.loads(encrypt_report.render("chrome-trace"))
        assert isinstance(events, list)
        assert all("ph" in e for e in events)
        names = [e["name"] for e in events]
        assert "ip.load_key" in names
        assert names.count("ip.encrypt") == 2

    def test_unknown_format_raises(self, encrypt_report):
        with pytest.raises(ValueError):
            encrypt_report.render("xml")
