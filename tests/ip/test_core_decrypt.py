"""Cycle-accurate decrypt-only core vs the golden model."""


from repro.aes.cipher import AES128
from repro.aes.key_schedule import expand_key
from repro.ip.control import Phase, Variant
from repro.ip.testbench import Testbench
from tests.conftest import random_block, random_key


class TestKnownAnswers:
    def test_fips_appendix_b(self, decrypt_bench, fips_plaintext,
                             fips_ciphertext):
        result, latency = decrypt_bench.decrypt(fips_ciphertext)
        assert result == fips_plaintext
        assert latency == 50

    def test_appendix_c1(self):
        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
        ct = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")
        bench = Testbench(Variant.DECRYPT)
        bench.load_key(key)
        result, _ = bench.decrypt(ct)
        assert result == bytes.fromhex(
            "00112233445566778899aabbccddeeff"
        )


class TestSetupPass:
    def test_setup_pass_is_forty_cycles(self, fips_key):
        bench = Testbench(Variant.DECRYPT)
        consumed = bench.load_key(fips_key)
        assert consumed == 41  # wr_key edge + 40-cycle pass

    def test_core_busy_during_setup(self, fips_key):
        bench = Testbench(Variant.DECRYPT)
        bench.load_key(fips_key, wait=False)
        assert bench.core.phase is Phase.KEY_SETUP
        bench.simulator.step(39)
        assert bench.core.busy
        bench.simulator.step(1)
        assert not bench.core.busy

    def test_setup_derives_last_round_key(self, fips_key):
        bench = Testbench(Variant.DECRYPT)
        bench.load_key(fips_key)
        expanded = expand_key(fips_key, 10)
        assert list(bench.core.keyunit.key_last_words()) == \
            expanded[40:44]

    def test_key_ready_flag(self, fips_key):
        bench = Testbench(Variant.DECRYPT)
        assert bench.core.key_ready.value == 0
        bench.load_key(fips_key)
        assert bench.core.key_ready.value == 1

    def test_decrypt_before_key_load_stays_buffered(self):
        # Without a key the device cannot start a decryption; the
        # block waits in the Data_In buffer.
        bench = Testbench(Variant.DECRYPT)
        bench.write_block(bytes(16))
        bench.simulator.step(60)
        assert bench.core.blocks_processed == 0
        assert bench.core.buf_valid.value == 1
        # Loading a key releases it.
        bench.load_key(bytes(16))
        result = bench.wait_result(max_cycles=120)
        assert result == AES128(bytes(16)).decrypt_block(bytes(16))


class TestAgainstGoldenModel:
    def test_random_blocks_match(self, rng):
        key = random_key(rng)
        bench = Testbench(Variant.DECRYPT)
        bench.load_key(key)
        golden = AES128(key)
        for _ in range(8):
            ct = random_block(rng)
            result, latency = bench.decrypt(ct)
            assert result == golden.decrypt_block(ct)
            assert latency == 50

    def test_encrypt_then_decrypt_round_trip(self, rng):
        key = random_key(rng)
        enc = Testbench(Variant.ENCRYPT)
        dec = Testbench(Variant.DECRYPT)
        enc.load_key(key)
        dec.load_key(key)
        for _ in range(4):
            block = random_block(rng)
            ct, _ = enc.encrypt(block)
            pt, _ = dec.decrypt(ct)
            assert pt == block

    def test_reverse_schedule_lands_on_key0(self, fips_key,
                                            fips_ciphertext):
        # After a decryption the working key register has walked all
        # the way back to the cipher key — the invariant behind the
        # folded final Add Key.
        bench = Testbench(Variant.DECRYPT)
        bench.load_key(fips_key)
        bench.decrypt(fips_ciphertext)
        assert bench.core.keyunit.work_words() == \
            bench.core.keyunit.key0_words()


class TestVariantRestrictions:
    def test_decrypt_only_has_no_forward_data_sbox(self):
        bench = Testbench(Variant.DECRYPT)
        assert bench.core.sbox_f is None
        assert bench.core.sbox_i is not None

    def test_decrypt_only_rom_bits(self):
        # 4 inverse data S-boxes + 4 (forward) KStran S-boxes.
        assert Testbench(Variant.DECRYPT).core.rom_bits == 16384

    def test_encdec_pin_ignored(self, decrypt_bench, fips_plaintext,
                                fips_ciphertext):
        result, _ = decrypt_bench.process_block(fips_ciphertext,
                                                direction=0)
        assert result == fips_plaintext
