"""Tests for the precomputed-key-schedule core."""

import pytest

from repro.aes.cipher import AES128, Rijndael
from repro.aes.key_schedule import expand_key
from repro.aes.vectors import (
    FIPS197_APPENDIX_C1,
    FIPS197_APPENDIX_C2,
    FIPS197_APPENDIX_C3,
)
from repro.ip.control import Variant
from repro.ip.core import DIR_DECRYPT, DIR_ENCRYPT
from repro.ip.precomputed import PrecomputedKeyCore, \
    PrecomputedTestbench
from repro.ip.testbench import Testbench
from repro.rtl.simulator import Simulator
from tests.conftest import random_block, random_key

VECTORS = {128: FIPS197_APPENDIX_C1, 192: FIPS197_APPENDIX_C2,
           256: FIPS197_APPENDIX_C3}


class TestConstruction:
    def test_key_sizes(self):
        with pytest.raises(ValueError):
            PrecomputedKeyCore(Simulator(), key_bits=64)

    @pytest.mark.parametrize("bits,words", [(128, 44), (192, 52),
                                            (256, 60)])
    def test_key_store_size(self, bits, words):
        core = PrecomputedKeyCore(Simulator(), bits)
        assert core.total_words == words
        assert core.key_store_bits == words * 32

    @pytest.mark.parametrize("bits,cycles", [(128, 40), (192, 46),
                                             (256, 52)])
    def test_expansion_cycles(self, bits, cycles):
        core = PrecomputedKeyCore(Simulator(), bits)
        assert core.expansion_cycles == cycles

    def test_expansion_matches_keysize_model(self):
        from repro.arch.keysize import KeySizeVariant

        for bits in (128, 192, 256):
            core = PrecomputedKeyCore(Simulator(), bits)
            assert core.expansion_cycles == \
                KeySizeVariant(bits).key_setup_cycles


class TestExpansion:
    @pytest.mark.parametrize("bits", [128, 192, 256])
    def test_ram_holds_fips_expansion(self, bits):
        vector = VECTORS[bits]
        bench = PrecomputedTestbench(bits)
        bench.load_key(vector.key)
        expected = expand_key(vector.key, bits // 32 + 6)
        stored = [reg.value for reg in bench.core.keyram]
        assert stored == expected

    def test_key_ready_timing(self, fips_key):
        bench = PrecomputedTestbench(128)
        bench.load_key(fips_key, wait=False)
        assert bench.core.key_ready.value == 0
        bench.simulator.step(40)
        assert bench.core.key_ready.value == 1


class TestKnownAnswers:
    @pytest.mark.parametrize("bits", [128, 192, 256])
    def test_both_directions(self, bits):
        vector = VECTORS[bits]
        bench = PrecomputedTestbench(bits)
        bench.load_key(vector.key)
        ct, enc_latency = bench.encrypt(vector.plaintext)
        pt, dec_latency = bench.decrypt(ct)
        assert ct == vector.ciphertext
        assert pt == vector.plaintext
        assert enc_latency == dec_latency == (bits // 32 + 6) * 5


class TestAgainstOtherCores:
    def test_agrees_with_on_the_fly_core(self, rng):
        key = random_key(rng)
        otf = Testbench(Variant.BOTH)
        pre = PrecomputedTestbench(128)
        otf.load_key(key)
        pre.load_key(key)
        block = random_block(rng)
        ct_otf, _ = otf.encrypt(block)
        ct_pre, _ = pre.encrypt(block)
        assert ct_otf == ct_pre
        pt_otf, _ = otf.decrypt(ct_pre)
        pt_pre, _ = pre.decrypt(ct_pre)
        assert pt_otf == pt_pre == block

    @pytest.mark.parametrize("bits", [192, 256])
    def test_wide_key_decryption_unlocked(self, bits, rng):
        """The on-the-fly reverse walk is AES-128-only; this core
        decrypts every size."""
        key = bytes(rng.randrange(256) for _ in range(bits // 8))
        golden = Rijndael(key, 16)
        bench = PrecomputedTestbench(bits)
        bench.load_key(key)
        for _ in range(3):
            ct = random_block(rng)
            pt, _ = bench.decrypt(ct)
            assert pt == golden.decrypt_block(ct)


class TestProtocol:
    def test_block_before_key_waits(self, fips_key, fips_plaintext):
        bench = PrecomputedTestbench(128)
        core = bench.core
        core.wr_data.value = 1
        core.din.value = int.from_bytes(fips_plaintext, "big")
        bench.simulator.step()
        bench.simulator.step(10)
        assert core.blocks_processed == 0
        core.wr_data.value = 0
        bench.load_key(fips_key)
        bench.simulator.run_until(
            lambda: core.data_ok.value == 1, max_cycles=120
        )
        assert core.out_block() == \
            AES128(fips_key).encrypt_block(fips_plaintext)

    def test_variant_restriction(self, rng, fips_key):
        bench = PrecomputedTestbench(128, Variant.ENCRYPT)
        bench.load_key(fips_key)
        # The enc/dec pin is ignored on a single-direction device.
        block = random_block(rng)
        result, _ = bench.process_block(block, DIR_DECRYPT)
        assert result == AES128(fips_key).encrypt_block(block)

    def test_overrun_counting(self, fips_key, rng):
        bench = PrecomputedTestbench(128)
        bench.load_key(fips_key)
        core = bench.core
        for _ in range(3):
            core.wr_data.value = 1
            core.din.value = int.from_bytes(random_block(rng), "big")
            core.encdec.value = DIR_ENCRYPT
            bench.simulator.step()
        core.wr_data.value = 0
        assert core.bus_overruns >= 1

    def test_rekey_mid_traffic(self, rng):
        bench = PrecomputedTestbench(128)
        key1, key2 = random_key(rng), random_key(rng)
        block = random_block(rng)
        bench.load_key(key1)
        first, _ = bench.encrypt(block)
        bench.load_key(key2)
        second, _ = bench.encrypt(block)
        assert first == AES128(key1).encrypt_block(block)
        assert second == AES128(key2).encrypt_block(block)
