"""The combined encrypt/decrypt device (enc/dec pin, paper §4)."""


from repro.aes.cipher import AES128
from repro.ip.control import Variant
from repro.ip.core import DIR_DECRYPT, DIR_ENCRYPT
from repro.ip.testbench import Testbench
from tests.conftest import random_block, random_key


class TestDirectionPin:
    def test_encrypt_direction(self, both_bench, fips_plaintext,
                               fips_ciphertext):
        result, _ = both_bench.encrypt(fips_plaintext)
        assert result == fips_ciphertext

    def test_decrypt_direction(self, both_bench, fips_plaintext,
                               fips_ciphertext):
        result, _ = both_bench.decrypt(fips_ciphertext)
        assert result == fips_plaintext

    def test_alternating_directions(self, rng):
        key = random_key(rng)
        bench = Testbench(Variant.BOTH)
        bench.load_key(key)
        golden = AES128(key)
        for _ in range(4):
            block = random_block(rng)
            ct, _ = bench.encrypt(block)
            assert ct == golden.encrypt_block(block)
            pt, _ = bench.decrypt(ct)
            assert pt == block

    def test_direction_sampled_at_block_start(self, both_bench,
                                              fips_plaintext,
                                              fips_ciphertext):
        # Flip the pin mid-run: the in-flight block must not change
        # direction.
        both_bench.write_block(fips_plaintext, direction=DIR_ENCRYPT)
        both_bench.core.encdec.value = DIR_DECRYPT
        result = both_bench.wait_result()
        assert result == fips_ciphertext


class TestLatencyParity:
    def test_both_directions_take_fifty_cycles(self, both_bench, rng):
        block = random_block(rng)
        _, enc_latency = both_bench.encrypt(block)
        _, dec_latency = both_bench.decrypt(block)
        assert enc_latency == dec_latency == 50

    def test_setup_pass_like_decrypt_device(self, fips_key):
        bench = Testbench(Variant.BOTH)
        assert bench.load_key(fips_key) == 41


class TestStructure:
    def test_has_both_sbox_banks(self):
        core = Testbench(Variant.BOTH).core
        assert core.sbox_f is not None
        assert core.sbox_i is not None

    def test_functional_rom_bits(self):
        # Functional model: fwd data + inv data + one shared KStran
        # bank = 24576 bits.  (The paper's area accounting duplicates
        # the KStran bank — covered by the fpga netlist tests.)
        assert Testbench(Variant.BOTH).core.rom_bits == 24576

    def test_cross_check_against_single_direction_devices(self, rng):
        key = random_key(rng)
        both = Testbench(Variant.BOTH)
        enc = Testbench(Variant.ENCRYPT)
        dec = Testbench(Variant.DECRYPT)
        for bench in (both, enc, dec):
            bench.load_key(key)
        block = random_block(rng)
        ct_both, _ = both.encrypt(block)
        ct_enc, _ = enc.encrypt(block)
        assert ct_both == ct_enc
        pt_both, _ = both.decrypt(ct_both)
        pt_dec, _ = dec.decrypt(ct_both)
        assert pt_both == pt_dec == block


class TestMixedStreaming:
    def test_interleaved_stream_with_buffering(self, rng):
        """Feed enc,dec,enc,dec... back-to-back through the buffer."""
        key = random_key(rng)
        bench = Testbench(Variant.BOTH)
        bench.load_key(key)
        golden = AES128(key)
        plain = [random_block(rng) for _ in range(3)]
        cipher = [golden.encrypt_block(b) for b in plain]
        jobs = []
        for p, c in zip(plain, cipher):
            jobs.append((p, DIR_ENCRYPT, golden.encrypt_block(p)))
            jobs.append((c, DIR_DECRYPT, p))
        results = []
        pending = list(jobs)
        bench.write_block(pending[0][0], direction=pending[0][1])
        submitted = 1
        budget = (len(jobs) + 2) * 200
        while len(results) < len(jobs) and budget:
            if submitted < len(jobs) and bench.core.can_accept:
                bench.write_block(pending[submitted][0],
                                  direction=pending[submitted][1])
                submitted += 1
            else:
                bench.simulator.step()
            if bench.core.data_ok.value == 1:
                results.append(bench.core.out_block())
            budget -= 1
        assert len(results) == len(jobs)
        for (block, direction, expected), got in zip(jobs, results):
            assert got == expected
