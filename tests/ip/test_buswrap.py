"""Tests for the narrow-bus wrapper — §4's integration claim, in RTL."""

import pytest

from repro.aes.cipher import AES128
from repro.ip.buswrap import NarrowBusHost, NarrowBusWrapper
from repro.ip.control import Variant
from repro.ip.core import DIR_DECRYPT, DIR_ENCRYPT, RijndaelCore
from repro.rtl.simulator import Simulator
from tests.conftest import random_block, random_key


class TestConstruction:
    def test_legal_widths(self):
        sim = Simulator()
        core = RijndaelCore(sim, Variant.ENCRYPT)
        with pytest.raises(ValueError):
            NarrowBusWrapper(sim, core, 12)

    def test_beats_per_block(self):
        for width, beats in ((8, 16), (16, 8), (32, 4), (64, 2)):
            host = NarrowBusHost(width)
            assert host.bus.beats_per_block == beats


class TestFunctional:
    @pytest.mark.parametrize("width", [8, 16, 32, 64])
    def test_single_block_round_trip(self, width, rng):
        key = random_key(rng)
        block = random_block(rng)
        host = NarrowBusHost(width)
        host.load_key(key)
        result, _ = host.process_block(block)
        assert result == AES128(key).encrypt_block(block)

    def test_key_loading_over_bus(self, rng):
        # The key travels the same narrow bus (setup period).
        key = random_key(rng)
        host = NarrowBusHost(16)
        host.load_key(key)
        assert host.core.keyunit.key0_words() == tuple(
            int.from_bytes(key[4 * i : 4 * i + 4], "big")
            for i in range(4)
        )

    def test_decrypt_through_wrapper(self, rng):
        key = random_key(rng)
        golden = AES128(key)
        host = NarrowBusHost(16, variant=Variant.BOTH)
        host.load_key(key)
        block = random_block(rng)
        ct, _ = host.process_block(block, direction=DIR_ENCRYPT)
        pt, _ = host.process_block(ct, direction=DIR_DECRYPT)
        assert ct == golden.encrypt_block(block)
        assert pt == block

    def test_stream_correctness(self, rng):
        key = random_key(rng)
        golden = AES128(key)
        host = NarrowBusHost(32)
        host.load_key(key)
        blocks = [random_block(rng) for _ in range(4)]
        results, _ = host.stream(blocks)
        assert results == [golden.encrypt_block(b) for b in blocks]

    def test_empty_stream(self):
        assert NarrowBusHost(16).stream([]) == ([], [])


class TestFullRateClaim:
    """§4: 16/32-bit buses sustain full rate; 8-bit does not."""

    @staticmethod
    def steady_gaps(width: int, rng) -> list:
        key = random_key(rng)
        host = NarrowBusHost(width)
        host.load_key(key)
        blocks = [random_block(rng) for _ in range(5)]
        _, stamps = host.stream(blocks)
        # Drop the last gap: no following write overlaps it.
        return [b - a for a, b in zip(stamps, stamps[1:])][:-1]

    def test_sixteen_bit_sustains_core_rate(self, rng):
        gaps = self.steady_gaps(16, rng)
        assert all(gap == 50 for gap in gaps), gaps

    def test_thirtytwo_bit_sustains_core_rate(self, rng):
        gaps = self.steady_gaps(32, rng)
        assert all(gap == 50 for gap in gaps), gaps

    def test_eight_bit_bus_bound(self, rng):
        # 16 in-beats + 16 out-beats x 2 cycles = 64 > 50: the block
        # period degrades to the bus transfer time.
        gaps = self.steady_gaps(8, rng)
        assert all(gap > 50 for gap in gaps), gaps
        assert max(gaps) >= 64


class TestProtocolEdges:
    def test_overflow_counted(self, rng):
        host = NarrowBusHost(32, variant=Variant.DECRYPT)
        # No key loaded: block 1 lands in the core's Data_In buffer
        # (held until a key arrives), block 2 stays pending in the
        # wrapper, so block 3's beats have nowhere to go.
        host.write_block(random_block(rng))
        host.write_block(random_block(rng))
        host.write_block(random_block(rng))
        assert host.bus.overflows > 0

    def test_out_valid_drops_after_full_read(self, rng):
        key = random_key(rng)
        host = NarrowBusHost(16)
        host.load_key(key)
        host.process_block(random_block(rng))
        host.simulator.step(2)
        assert host.bus.h_out_valid.value == 0
