"""I/O overlap and streaming (the Data_In / Out processes, paper §4).

The paper's reason for registering the bus: "The independence of
process execution allows the execution of a read of new data at same
time an encryption/decryption process is being performed", and the Out
register lets the core "start another operation while the data out is
being transferred".  Consequence (asserted here): steady-state result
spacing equals the block latency exactly — throughput really is
128 bits / latency as Table 2 computes it.
"""


from repro.aes.cipher import AES128
from repro.ip.control import Variant
from repro.ip.core import DIR_ENCRYPT
from repro.ip.testbench import Testbench
from tests.conftest import random_block, random_key


class TestZeroGapStreaming:
    def test_result_spacing_equals_latency(self, rng):
        key = random_key(rng)
        bench = Testbench(Variant.ENCRYPT)
        bench.load_key(key)
        blocks = [random_block(rng) for _ in range(6)]
        results, stamps = bench.stream_blocks(blocks)
        gaps = [b - a for a, b in zip(stamps, stamps[1:])]
        assert gaps == [50] * 5

    def test_streamed_results_correct_and_ordered(self, rng):
        key = random_key(rng)
        bench = Testbench(Variant.ENCRYPT)
        bench.load_key(key)
        golden = AES128(key)
        blocks = [random_block(rng) for _ in range(6)]
        results, _ = bench.stream_blocks(blocks)
        assert results == [golden.encrypt_block(b) for b in blocks]

    def test_decrypt_streaming(self, rng):
        key = random_key(rng)
        bench = Testbench(Variant.DECRYPT)
        bench.load_key(key)
        golden = AES128(key)
        blocks = [random_block(rng) for _ in range(4)]
        results, stamps = bench.stream_blocks(blocks)
        assert results == [golden.decrypt_block(b) for b in blocks]
        assert all(b - a == 50 for a, b in zip(stamps, stamps[1:]))

    def test_empty_stream(self):
        bench = Testbench(Variant.ENCRYPT)
        assert bench.stream_blocks([]) == ([], [])


class TestInputBuffer:
    def test_write_while_busy_is_buffered(self, encrypt_bench):
        encrypt_bench.write_block(bytes(16))
        assert encrypt_bench.core.can_accept
        encrypt_bench.write_block(bytes([1] * 16))
        assert not encrypt_bench.core.can_accept
        assert encrypt_bench.core.buf_valid.value == 1

    def test_buffered_block_starts_at_finish_edge(self, encrypt_bench,
                                                  rng, fips_key):
        golden = AES128(fips_key)
        first, second = random_block(rng), random_block(rng)
        encrypt_bench.write_block(first)
        encrypt_bench.write_block(second)
        r1 = encrypt_bench.wait_result()
        stamp1 = encrypt_bench.simulator.cycle
        encrypt_bench.simulator.step()  # leave the pulse
        r2 = encrypt_bench.wait_result()
        stamp2 = encrypt_bench.simulator.cycle
        assert r1 == golden.encrypt_block(first)
        assert r2 == golden.encrypt_block(second)
        assert stamp2 - stamp1 == 50  # popped with zero gap

    def test_overrun_is_counted_and_dropped(self, encrypt_bench, rng,
                                            fips_key):
        golden = AES128(fips_key)
        blocks = [random_block(rng) for _ in range(3)]
        encrypt_bench.write_block(blocks[0])  # running
        encrypt_bench.write_block(blocks[1])  # buffered
        encrypt_bench.write_block(blocks[2])  # dropped
        assert encrypt_bench.core.bus_overruns == 1
        r1 = encrypt_bench.wait_result()
        encrypt_bench.simulator.step()
        r2 = encrypt_bench.wait_result()
        assert r1 == golden.encrypt_block(blocks[0])
        assert r2 == golden.encrypt_block(blocks[1])
        # The third block never ran.
        assert encrypt_bench.core.blocks_processed == 2

    def test_buffer_capture_during_key_setup(self, fips_key, rng):
        bench = Testbench(Variant.DECRYPT)
        golden = AES128(fips_key)
        ct = golden.encrypt_block(random_block(rng))
        bench.load_key(fips_key, wait=False)
        bench.write_block(ct)  # arrives mid setup pass
        result = bench.wait_result(max_cycles=120)
        assert result == golden.decrypt_block(ct)


class TestProtocolEdges:
    def test_wr_data_during_setup_period_is_ignored(self, encrypt_bench):
        core = encrypt_bench.core
        core.setup.value = 1
        core.wr_data.value = 1
        core.din.value = 123
        encrypt_bench.simulator.step()
        core.setup.value = 0
        core.wr_data.value = 0
        assert core.protocol_errors == 1
        assert core.blocks_processed == 0
        assert not core.busy

    def test_wr_key_during_operation_period_is_ignored(self,
                                                       encrypt_bench,
                                                       fips_key):
        core = encrypt_bench.core
        before = core.keyunit.key0_words()
        core.setup.value = 0
        core.wr_key.value = 1
        core.din.value = (1 << 128) - 1
        encrypt_bench.simulator.step()
        core.wr_key.value = 0
        assert core.protocol_errors == 1
        assert core.keyunit.key0_words() == before

    def test_key_reload_preempts_running_block(self, fips_key, rng):
        # Loading a new key mid-block abandons the block (documented
        # behaviour); the device must come back clean.
        bench = Testbench(Variant.BOTH)
        bench.load_key(fips_key)
        bench.write_block(random_block(rng), direction=DIR_ENCRYPT)
        bench.simulator.step(10)  # mid-flight
        key2 = random_key(rng)
        bench.load_key(key2)
        block = random_block(rng)
        result, _ = bench.encrypt(block)
        assert result == AES128(key2).encrypt_block(block)
