"""Tests for the radiation-hardened core (TMR + parity)."""

import pytest

from repro.aes.cipher import AES128
from repro.analysis.seu import inject_once, run_campaign
from repro.ip.control import Variant
from repro.ip.hardened import (
    HardenedRijndaelCore,
    TmrRegister,
    hardening_overhead,
    parity_of,
)
from repro.ip.testbench import Testbench
from repro.rtl.signal import SignalError
from repro.rtl.simulator import Simulator
from tests.conftest import random_block, random_key

KEY = bytes(range(16))
BLOCK = bytes.fromhex("00112233445566778899aabbccddeeff")


class TestTmrRegister:
    def test_majority_read(self):
        sim = Simulator()
        tmr = TmrRegister(sim, "r", 8)
        tmr.copies[0].deposit(0xFF)
        assert tmr.value == 0  # one corrupted copy is out-voted

    def test_two_copies_win(self):
        sim = Simulator()
        tmr = TmrRegister(sim, "r", 8)
        tmr.copies[0].deposit(0xF0)
        tmr.copies[1].deposit(0xF0)
        assert tmr.value == 0xF0

    def test_bitwise_vote(self):
        sim = Simulator()
        tmr = TmrRegister(sim, "r", 4)
        tmr.copies[0].deposit(0b1100)
        tmr.copies[1].deposit(0b1010)
        tmr.copies[2].deposit(0b0110)
        assert tmr.value == 0b1110

    def test_next_writes_all_copies(self):
        sim = Simulator()
        tmr = TmrRegister(sim, "r", 8)
        tmr.next = 0x5A
        for copy in tmr.copies:
            copy.commit()
        assert all(c.value == 0x5A for c in tmr.copies)
        assert tmr.value == 0x5A

    def test_value_not_writable(self):
        tmr = TmrRegister(Simulator(), "r", 8)
        with pytest.raises(SignalError):
            tmr.value = 1  # type: ignore[misc]

    def test_copies_registered_with_simulator(self):
        sim = Simulator()
        TmrRegister(sim, "r", 8)
        names = [r.name for r in sim.registers]
        assert names == ["r_tmr0", "r_tmr1", "r_tmr2"]

    def test_reset(self):
        sim = Simulator()
        tmr = TmrRegister(sim, "r", 8, reset=7)
        tmr.copies[1].deposit(0)
        tmr.reset()
        assert tmr.value == 7


class TestFunctionalEquivalence:
    def test_matches_golden_model(self, rng):
        key = random_key(rng)
        bench = Testbench(Variant.BOTH, hardened=True)
        bench.load_key(key)
        golden = AES128(key)
        for _ in range(4):
            block = random_block(rng)
            ct, latency = bench.encrypt(block)
            assert ct == golden.encrypt_block(block)
            assert latency == 50
            pt, _ = bench.decrypt(ct)
            assert pt == block

    def test_no_false_alarms_in_clean_runs(self, rng):
        bench = Testbench(Variant.ENCRYPT, hardened=True)
        bench.load_key(random_key(rng))
        bench.core.clear_error()
        for _ in range(3):
            bench.encrypt(random_block(rng))
        assert bench.core.error_detected.value == 0
        assert bench.core.errors_flagged == 0

    def test_control_registers_are_tmr(self):
        bench = Testbench(Variant.ENCRYPT, hardened=True)
        core = bench.core
        assert isinstance(core, HardenedRijndaelCore)
        assert isinstance(core.round, TmrRegister)
        assert isinstance(core.top, TmrRegister)
        assert "aes_round" in core.tmr_register_names


class TestFaultBehaviour:
    def test_control_flip_is_voted_out(self):
        # Flipping one TMR copy of the round counter mid-run changes
        # nothing: the other two copies out-vote it.
        result = inject_once(KEY, BLOCK, "aes_round_tmr1", bit=2,
                             cycle_offset=12, hardened=True)
        assert result.outcome == "masked"

    def test_unhardened_control_flip_corrupts_or_hangs(self):
        result = inject_once(KEY, BLOCK, "aes_round", bit=2,
                             cycle_offset=12, hardened=False)
        assert result.outcome in ("corrupted", "hung")

    def test_state_flip_detected_by_parity(self):
        result = inject_once(KEY, BLOCK, "aes_state_0", bit=9,
                             cycle_offset=12, hardened=True)
        assert result.outcome == "detected"

    def test_parity_of(self):
        assert parity_of(0) == 0
        assert parity_of(0b1011) == 1
        assert parity_of(0xFF) == 0


class TestCampaignComparison:
    def test_hardening_cuts_undetected_corruption(self):
        plain = run_campaign(40, seed=99, hardened=False)
        hard = run_campaign(40, seed=99, hardened=True)
        assert hard.corruption_rate < plain.corruption_rate

    def test_hardened_campaign_reports_detections(self):
        hard = run_campaign(
            30, seed=4, hardened=True,
            targets=[f"aes_state_{i}" for i in range(4)],
        )
        # Parity catches essentially every live-state flip.
        assert hard.count("detected") + hard.count("masked") >= 28
        assert "detected" in hard.render()


class TestOverheadModel:
    def test_overhead_is_modest(self):
        cost = hardening_overhead()
        # The mitigation is supposed to be cheap relative to the
        # 2114-LE encrypt device: well under 10 %.
        assert 0 < cost["extra_les"] < 0.10 * 2114

    def test_overhead_fields(self):
        cost = hardening_overhead()
        assert cost["control_bits"] == 20
        assert cost["extra_flipflops"] > 2 * cost["control_bits"] - 1
