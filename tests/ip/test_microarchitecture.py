"""Microarchitectural trace tests: the FSM executes the exact 5-cycle
round schedule the paper describes, observed through waveforms."""


from repro.ip.control import Variant
from repro.ip.testbench import Testbench
from repro.rtl.trace import Trace


def traced_bench(variant: Variant, sync_rom: bool = False):
    bench = Testbench(variant, sync_rom=sync_rom)
    core = bench.core
    trace = Trace(bench.simulator,
                  [core.step, core.round, core.data_ok, core.top])
    return bench, trace


class TestEncryptSchedule:
    def test_step_sequence_is_0123_4(self, fips_key, fips_plaintext):
        bench, trace = traced_bench(Variant.ENCRYPT)
        bench.load_key(fips_key)
        start = bench.simulator.cycle
        bench.encrypt(fips_plaintext)
        steps = trace.history("aes_step")[start:start + 50]
        # Sampled after each edge: the capture edge commits step 0,
        # then the four ByteSub edges commit 1..4, then the M edge
        # recommits 0 for the next round — period 5.
        for i in range(0, 45, 5):
            assert steps[i:i + 5] == [0, 1, 2, 3, 4], (i, steps[i:i+5])

    def test_round_counter_increments_every_five(self, fips_key,
                                                 fips_plaintext):
        bench, trace = traced_bench(Variant.ENCRYPT)
        bench.load_key(fips_key)
        start = bench.simulator.cycle
        bench.encrypt(fips_plaintext)
        rounds = trace.history("aes_round")[start:start + 50]
        for rnd in range(1, 10):
            # Round value r persists for its 5 cycles.
            window = rounds[(rnd - 1) * 5:(rnd - 1) * 5 + 4]
            assert all(v == rnd for v in window), (rnd, window)

    def test_single_data_ok_pulse_per_block(self, fips_key,
                                            fips_plaintext):
        bench, trace = traced_bench(Variant.ENCRYPT)
        bench.load_key(fips_key)
        bench.encrypt(fips_plaintext)
        bench.simulator.step(5)
        pulses = sum(trace.history("aes_data_ok"))
        assert pulses == 1

    def test_no_data_ok_during_key_setup(self, fips_key):
        bench, trace = traced_bench(Variant.DECRYPT)
        bench.load_key(fips_key)
        assert sum(trace.history("aes_data_ok")) == 0

    def test_top_state_timeline(self, fips_key, fips_plaintext):
        bench, trace = traced_bench(Variant.ENCRYPT)
        bench.load_key(fips_key)
        bench.write_block(fips_plaintext)
        bench.wait_result()
        tops = trace.history("aes_top")
        # IDLE(0) before the block, RUN(2) for 50 cycles, IDLE after.
        assert tops.count(2) == 50
        assert tops[-1] == 0


class TestDecryptSchedule:
    def test_decrypt_round_counts_down(self, fips_key,
                                       fips_ciphertext):
        bench, trace = traced_bench(Variant.DECRYPT)
        bench.load_key(fips_key)
        start = bench.simulator.cycle
        bench.decrypt(fips_ciphertext)
        rounds = trace.history("aes_round")[start:start + 50]
        # Rounds walk 10, 9, ..., 1 with 5-cycle dwell.
        observed = []
        for value in rounds:
            if not observed or observed[-1] != value:
                observed.append(value)
        assert observed[:10] == [10, 9, 8, 7, 6, 5, 4, 3, 2, 1]

    def test_decrypt_step_order_m_first(self, fips_key,
                                        fips_ciphertext):
        bench, trace = traced_bench(Variant.DECRYPT)
        bench.load_key(fips_key)
        start = bench.simulator.cycle
        bench.decrypt(fips_ciphertext)
        steps = trace.history("aes_step")[start:start + 50]
        # Decrypt rounds run M-first but the committed step values
        # walk the same 0..4 staircase (step 0 = the M cycle).
        for i in range(0, 45, 5):
            assert steps[i:i + 5] == [0, 1, 2, 3, 4], (i, steps[i:i+5])


class TestSyncRomSchedule:
    def test_six_cycle_rounds(self, fips_key, fips_plaintext):
        bench, trace = traced_bench(Variant.ENCRYPT, sync_rom=True)
        bench.load_key(fips_key)
        start = bench.simulator.cycle
        bench.encrypt(fips_plaintext)
        steps = trace.history("aes_step")[start:start + 60]
        for i in range(0, 54, 6):
            assert steps[i:i + 6] == [0, 1, 2, 3, 4, 5], \
                (i, steps[i:i+6])


class TestWaveformRendering:
    def test_render_shows_pulse(self, fips_key, fips_plaintext):
        bench, trace = traced_bench(Variant.ENCRYPT)
        bench.load_key(fips_key)
        bench.encrypt(fips_plaintext)
        art = trace.render(last=12)
        assert "aes_data_ok" in art
        assert "▔▔" in art  # the pulse is visible
