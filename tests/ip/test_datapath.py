"""Tests for the 128-bit combinational stage.

These cross-check the hardware datapath functions against the
*independent* behavioral implementation in repro.aes.transforms — the
two were written against the spec separately, so agreement here is a
real check, not a tautology.
"""

import pytest

from repro.aes.state import State
from repro.aes.transforms import (
    inv_mix_columns,
    inv_shift_rows,
    mix_columns,
    shift_rows,
)
from repro.ip.datapath import (
    add_key_128,
    block_to_words,
    decrypt_mix_stage,
    encrypt_mix_stage,
    int_to_words,
    inv_mix_columns_128,
    inv_shift_rows_128,
    mix_column_word,
    mix_columns_128,
    shift_rows_128,
    words_to_block,
    words_to_int,
)


def behavioral(fn, block: bytes) -> bytes:
    return fn(State(block)).to_bytes()


BLOCKS = [
    bytes(range(16)),
    bytes.fromhex("d4bf5d30e0b452aeb84111f11e2798e5"),
    bytes.fromhex("00112233445566778899aabbccddeeff"),
    bytes(16),
    bytes([0xFF] * 16),
]


class TestPacking:
    def test_block_words_round_trip(self):
        block = bytes(range(16))
        assert words_to_block(block_to_words(block)) == block

    def test_word_zero_is_first_column(self):
        words = block_to_words(bytes(range(16)))
        assert words[0] == 0x00010203

    def test_int_packing_round_trip(self):
        words = (0xDEADBEEF, 0x00C0FFEE, 0x12345678, 0x9ABCDEF0)
        assert int_to_words(words_to_int(words)) == words

    def test_int_matches_big_endian_bytes(self):
        block = bytes(range(16))
        assert words_to_int(block_to_words(block)) == \
            int.from_bytes(block, "big")

    def test_block_length_checked(self):
        with pytest.raises(ValueError):
            block_to_words(bytes(15))

    def test_int_range_checked(self):
        with pytest.raises(ValueError):
            int_to_words(1 << 128)

    def test_word_range_checked(self):
        with pytest.raises(ValueError):
            words_to_block((1 << 32, 0, 0, 0))


class TestAgainstBehavioralModel:
    @pytest.mark.parametrize("block", BLOCKS)
    def test_shift_rows(self, block):
        hw = words_to_block(shift_rows_128(block_to_words(block)))
        assert hw == behavioral(shift_rows, block)

    @pytest.mark.parametrize("block", BLOCKS)
    def test_inv_shift_rows(self, block):
        hw = words_to_block(inv_shift_rows_128(block_to_words(block)))
        assert hw == behavioral(inv_shift_rows, block)

    @pytest.mark.parametrize("block", BLOCKS)
    def test_mix_columns(self, block):
        hw = words_to_block(mix_columns_128(block_to_words(block)))
        assert hw == behavioral(mix_columns, block)

    @pytest.mark.parametrize("block", BLOCKS)
    def test_inv_mix_columns(self, block):
        hw = words_to_block(inv_mix_columns_128(block_to_words(block)))
        assert hw == behavioral(inv_mix_columns, block)


class TestInvariants:
    def test_shift_rows_inverse(self):
        words = block_to_words(bytes(range(16)))
        assert inv_shift_rows_128(shift_rows_128(words)) == words

    def test_mix_columns_inverse(self):
        words = block_to_words(bytes(range(16)))
        assert inv_mix_columns_128(mix_columns_128(words)) == words

    def test_add_key_involution(self):
        words = block_to_words(bytes(range(16)))
        key = block_to_words(bytes(reversed(range(16))))
        assert add_key_128(add_key_128(words, key), key) == words

    def test_mix_column_word_fips(self):
        assert mix_column_word(0xDB135345) == 0x8E4DA1BC

    def test_word_count_checked(self):
        with pytest.raises(ValueError):
            mix_columns_128((1, 2, 3))


class TestMixStages:
    def test_encrypt_stage_composition(self, fips_key):
        words = block_to_words(bytes(range(16)))
        key = block_to_words(fips_key)
        expected = add_key_128(
            mix_columns_128(shift_rows_128(words)), key
        )
        assert encrypt_mix_stage(words, key, last_round=False) == expected

    def test_encrypt_stage_last_round_skips_mix(self, fips_key):
        words = block_to_words(bytes(range(16)))
        key = block_to_words(fips_key)
        expected = add_key_128(shift_rows_128(words), key)
        assert encrypt_mix_stage(words, key, last_round=True) == expected

    def test_decrypt_stage_inverts_encrypt_stage(self, fips_key):
        words = block_to_words(bytes(range(16)))
        key = block_to_words(fips_key)
        for last in (False, True):
            forward = encrypt_mix_stage(words, key, last_round=last)
            # The decrypt stage applies AK, IMC, ISR — the inverse of
            # (SR, MC, AK) is (AK, IMC, ISR) followed by IByteSub-less
            # undo of SR... verify the exact algebra instead:
            undone = decrypt_mix_stage(forward, key, first_round=last)
            # decrypt_mix_stage(AK(MC(SR(x)))) = ISR(IMC(MC(SR(x)))) =
            # ISR(SR(x)) = x.
            assert undone == words
