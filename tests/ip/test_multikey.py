"""Tests for the AES-128/192/256 encrypt core."""

import pytest

from repro.aes.cipher import Rijndael
from repro.aes.vectors import (
    FIPS197_APPENDIX_C1,
    FIPS197_APPENDIX_C2,
    FIPS197_APPENDIX_C3,
)
from repro.arch.keysize import KeySizeVariant
from repro.ip.multikey import MultiKeyEncryptCore, MultiKeyTestbench
from repro.rtl.simulator import Simulator

VECTORS = {
    128: FIPS197_APPENDIX_C1,
    192: FIPS197_APPENDIX_C2,
    256: FIPS197_APPENDIX_C3,
}


class TestConstruction:
    def test_key_sizes(self):
        with pytest.raises(ValueError):
            MultiKeyEncryptCore(Simulator(), key_bits=160)

    @pytest.mark.parametrize("bits,rounds", [(128, 10), (192, 12),
                                             (256, 14)])
    def test_round_counts(self, bits, rounds):
        core = MultiKeyEncryptCore(Simulator(), bits)
        assert core.rounds == rounds
        assert core.latency_cycles == rounds * 5

    def test_memory_never_grows(self):
        # §3's versions differ only in key size; the S-box memory is
        # identical to the AES-128 device (16384 bits).
        for bits in (128, 192, 256):
            assert MultiKeyEncryptCore(Simulator(),
                                       bits).rom_bits == 16384

    def test_window_register_count(self):
        for bits, nk in ((128, 4), (192, 6), (256, 8)):
            core = MultiKeyEncryptCore(Simulator(), bits)
            assert len(core.window) == nk
            assert len(core.key) == nk


class TestKnownAnswers:
    @pytest.mark.parametrize("bits", [128, 192, 256])
    def test_fips_appendix_c(self, bits):
        vector = VECTORS[bits]
        bench = MultiKeyTestbench(bits)
        beats = bench.load_key(vector.key)
        assert beats == (1 if bits == 128 else 2)
        ct, latency = bench.encrypt(vector.plaintext)
        assert ct == vector.ciphertext
        assert latency == bench.core.latency_cycles


class TestAgainstGoldenModel:
    @pytest.mark.parametrize("bits", [128, 192, 256])
    def test_random_blocks(self, bits, rng):
        key = bytes(rng.randrange(256) for _ in range(bits // 8))
        golden = Rijndael(key, block_bytes=16)
        bench = MultiKeyTestbench(bits)
        bench.load_key(key)
        for _ in range(5):
            block = bytes(rng.randrange(256) for _ in range(16))
            ct, _ = bench.encrypt(block)
            assert ct == golden.encrypt_block(block)

    def test_matches_aes128_core(self, rng, fips_key):
        from repro.ip.control import Variant
        from repro.ip.testbench import Testbench

        reference = Testbench(Variant.ENCRYPT)
        reference.load_key(fips_key)
        multikey = MultiKeyTestbench(128)
        multikey.load_key(fips_key)
        block = bytes(rng.randrange(256) for _ in range(16))
        a, la = reference.encrypt(block)
        b, lb = multikey.encrypt(block)
        assert a == b and la == lb == 50


class TestStreaming:
    @pytest.mark.parametrize("bits,period", [(128, 50), (192, 60),
                                             (256, 70)])
    def test_zero_gap_streaming(self, bits, period, rng):
        key = bytes(rng.randrange(256) for _ in range(bits // 8))
        golden = Rijndael(key, block_bytes=16)
        bench = MultiKeyTestbench(bits)
        bench.load_key(key)
        blocks = [bytes(rng.randrange(256) for _ in range(16))
                  for _ in range(4)]
        results, stamps = bench.stream(blocks)
        assert results == [golden.encrypt_block(b) for b in blocks]
        gaps = [b - a for a, b in zip(stamps, stamps[1:])]
        assert gaps == [period] * 3

    def test_empty_stream(self):
        assert MultiKeyTestbench(192).stream([]) == ([], [])


class TestSpecModelAgreement:
    """The cycle-accurate core must realize the keysize spec model."""

    @pytest.mark.parametrize("bits", [128, 192, 256])
    def test_latency_matches_spec(self, bits, rng):
        spec = KeySizeVariant(bits)
        bench = MultiKeyTestbench(bits)
        bench.load_key(bytes(rng.randrange(256)
                             for _ in range(bits // 8)))
        _, latency = bench.encrypt(bytes(16))
        assert latency == spec.block_latency_cycles

    @pytest.mark.parametrize("bits", [128, 192, 256])
    def test_key_load_beats_match_spec(self, bits):
        spec = KeySizeVariant(bits)
        bench = MultiKeyTestbench(bits)
        beats = bench.load_key(bytes(bits // 8))
        assert beats == spec.key_load_beats


class TestValidation:
    def test_key_length_checked(self):
        with pytest.raises(ValueError):
            MultiKeyTestbench(192).load_key(bytes(16))

    def test_block_length_checked(self):
        with pytest.raises(ValueError):
            MultiKeyTestbench(128).encrypt(bytes(8))

    def test_overrun_counting(self, rng):
        bench = MultiKeyTestbench(256)
        bench.load_key(bytes(32))
        core = bench.core
        core.wr_data.value = 1
        core.din.value = 1
        bench.simulator.step()   # starts
        bench.simulator.step()   # buffers
        bench.simulator.step()   # overruns
        core.wr_data.value = 0
        assert core.bus_overruns >= 1
