"""Randomized protocol fuzzing of the core's bus behaviour.

A reference model tracks which writes the core must accept (buffer
free) or drop (buffer full), and which key is current; the fuzzer
drives random mixtures of writes, idle gaps and key reloads and checks
every ``data_ok`` result against the golden model — in order.
"""

import random

import pytest

from repro.aes.cipher import AES128
from repro.ip.control import Variant
from repro.ip.core import DIR_DECRYPT, DIR_ENCRYPT
from repro.ip.testbench import Testbench


class FuzzReference:
    """Host-side mirror of the acceptance rules."""

    def __init__(self, key: bytes):
        self.golden = AES128(key)
        self.expected = []
        self.dropped = 0

    def on_write(self, accepted: bool, block: bytes,
                 direction: int) -> None:
        if not accepted:
            self.dropped += 1
            return
        if direction == DIR_ENCRYPT:
            self.expected.append(self.golden.encrypt_block(block))
        else:
            self.expected.append(self.golden.decrypt_block(block))

    def rekey(self, key: bytes) -> None:
        self.golden = AES128(key)


def run_fuzz(seed: int, variant: Variant, schedule_len: int = 220,
             allow_rekey: bool = True) -> None:
    rng = random.Random(seed)
    key = bytes(rng.randrange(256) for _ in range(16))
    bench = Testbench(variant)
    bench.load_key(key)
    reference = FuzzReference(key)
    results = []

    def collect() -> None:
        if bench.core.data_ok.value == 1:
            results.append(bench.core.out_block())

    steps = 0
    while steps < schedule_len:
        action = rng.random()
        if action < 0.30:
            # Write a block; acceptance is observable beforehand.
            block = bytes(rng.randrange(256) for _ in range(16))
            if variant is Variant.BOTH:
                direction = rng.choice([DIR_ENCRYPT, DIR_DECRYPT])
            elif variant is Variant.ENCRYPT:
                direction = DIR_ENCRYPT
            else:
                direction = DIR_DECRYPT
            # A write is accepted unless it overruns; note that a
            # write landing on a finish edge is accepted even with
            # the buffer full (the buffer pops on that same edge), so
            # acceptance is judged by the overrun counter, not by
            # sampling can_accept beforehand.
            overruns_before = bench.core.bus_overruns
            bench.write_block(block, direction=direction)
            collect()
            accepted = bench.core.bus_overruns == overruns_before
            reference.on_write(accepted, block, direction)
            steps += 1
        elif action < 0.34 and allow_rekey and not bench.core.busy \
                and not bench.core.buf_valid.value:
            # Safe re-key: core idle, nothing buffered.
            key = bytes(rng.randrange(256) for _ in range(16))
            start = bench.simulator.cycle
            bench.load_key(key)
            steps += bench.simulator.cycle - start
            reference.rekey(key)
        else:
            gap = rng.randrange(1, 8)
            for _ in range(gap):
                bench.simulator.step()
                collect()
            steps += gap

    # Drain everything still in flight.
    deadline = bench.simulator.cycle + 3 * bench.core.latency_cycles
    while bench.simulator.cycle < deadline:
        bench.simulator.step()
        collect()

    assert results == reference.expected, (
        f"seed {seed}: {len(results)} results vs "
        f"{len(reference.expected)} expected "
        f"(dropped {reference.dropped})"
    )


class TestProtocolFuzz:
    @pytest.mark.parametrize("seed", range(6))
    def test_encrypt_only_schedules(self, seed):
        run_fuzz(seed, Variant.ENCRYPT)

    @pytest.mark.parametrize("seed", range(100, 104))
    def test_decrypt_only_schedules(self, seed):
        run_fuzz(seed, Variant.DECRYPT)

    @pytest.mark.parametrize("seed", range(200, 206))
    def test_both_variant_schedules(self, seed):
        run_fuzz(seed, Variant.BOTH)

    @pytest.mark.parametrize("seed", range(300, 303))
    def test_sync_rom_schedule(self, seed):
        rng = random.Random(seed)
        key = bytes(rng.randrange(256) for _ in range(16))
        bench = Testbench(Variant.ENCRYPT, sync_rom=True)
        bench.load_key(key)
        reference = FuzzReference(key)
        results = []
        for _ in range(8):
            block = bytes(rng.randrange(256) for _ in range(16))
            overruns_before = bench.core.bus_overruns
            bench.write_block(block, direction=DIR_ENCRYPT)
            accepted = bench.core.bus_overruns == overruns_before
            reference.on_write(accepted, block, DIR_ENCRYPT)
            for _ in range(rng.randrange(0, 90)):
                bench.simulator.step()
                if bench.core.data_ok.value == 1:
                    results.append(bench.core.out_block())
        for _ in range(3 * bench.core.latency_cycles):
            bench.simulator.step()
            if bench.core.data_ok.value == 1:
                results.append(bench.core.out_block())
        assert results == reference.expected

    def test_no_rekey_long_soak(self):
        run_fuzz(999, Variant.ENCRYPT, schedule_len=600,
                 allow_rekey=False)
