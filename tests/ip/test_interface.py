"""Tests for the Table 1 interface description and bus-width analysis."""

import pytest

from repro.ip.control import Variant
from repro.ip.interface import (
    DEVICE_SIGNALS,
    bus_utilization,
    interface_inventory,
    min_bus_width_for_full_rate,
    pin_count,
    signal_table,
)


class TestTable1:
    def test_signal_names_match_paper(self):
        names = [s.name for s in DEVICE_SIGNALS]
        assert names == [
            "clk", "setup", "wr_data", "wr_key", "din", "enc/dec",
            "data_ok", "dout",
        ]

    def test_directions(self):
        by_name = {s.name: s for s in DEVICE_SIGNALS}
        assert by_name["clk"].direction == "in"
        assert by_name["data_ok"].direction == "out"
        assert by_name["dout"].direction == "out"

    def test_bus_widths(self):
        by_name = {s.name: s for s in DEVICE_SIGNALS}
        assert by_name["din"].width == 128
        assert by_name["dout"].width == 128
        assert by_name["setup"].width == 1

    def test_encdec_only_on_both(self):
        by_name = {s.name: s for s in DEVICE_SIGNALS}
        assert by_name["enc/dec"].both_only
        assert not by_name["din"].both_only


class TestPinCounts:
    """Table 2's Pins rows: 261 / 261 / 262."""

    def test_single_direction_devices(self):
        assert pin_count(Variant.ENCRYPT) == 261
        assert pin_count(Variant.DECRYPT) == 261

    def test_both_device(self):
        assert pin_count(Variant.BOTH) == 262

    def test_matches_core_pins(self):
        # 4 control + 128 din + 1 data_ok + 128 dout (+ enc/dec).
        assert pin_count(Variant.ENCRYPT) == 4 + 128 + 1 + 128

    def test_occupancy_percentages(self):
        # 261/333 = 78% on Acex; 261/301 = 87% on Cyclone (Table 2).
        assert round(100 * 261 / 333) == 78
        assert round(100 * 261 / 301) == 87


class TestRendering:
    def test_table_text_contains_all_signals(self):
        text = signal_table(Variant.BOTH)
        for spec in DEVICE_SIGNALS:
            assert spec.name in text
        assert "262" in text

    def test_encrypt_table_omits_encdec(self):
        text = signal_table(Variant.ENCRYPT)
        assert "enc/dec" not in text
        assert "261" in text

    def test_inventory_mentions_processes(self):
        lines = "\n".join(interface_inventory(Variant.BOTH))
        assert "Data_In" in lines
        assert "Out process" in lines
        assert "enc/dec" in lines


class TestBusWidthClaim:
    """§4: a 32- or 16-bit wrapper bus sustains full rate; 'lower bus
    sizes could not be sufficient'."""

    def test_minimum_full_rate_width(self):
        width = min_bus_width_for_full_rate()
        assert width == 16

    def test_eight_bit_bus_oversubscribed(self):
        # 2 cycles/beat x 16 beats x 2 directions = 64 > 50 cycles.
        assert bus_utilization(8) > 1.0

    def test_sixteen_bit_bus_fits(self):
        assert bus_utilization(16) <= 0.75
        assert min_bus_width_for_full_rate() <= 16

    def test_thirtytwo_bit_bus_comfortable(self):
        assert bus_utilization(32) == pytest.approx(16 / 50)

    def test_sync_rom_build_relaxes_requirement(self):
        # 60-cycle blocks give the bus more room.
        assert bus_utilization(16, sync_rom=True) < bus_utilization(16)

    def test_width_validation(self):
        with pytest.raises(ValueError):
            bus_utilization(0)
