"""Microarchitectural trace tests for the multi-key-size and
precomputed-key cores."""

import pytest

from repro.ip.control import Variant
from repro.ip.multikey import MultiKeyTestbench
from repro.ip.precomputed import PrecomputedTestbench
from repro.rtl.trace import Trace


class TestMultiKeySchedule:
    @pytest.mark.parametrize("bits,rounds", [(128, 10), (192, 12),
                                             (256, 14)])
    def test_round_dwell(self, bits, rounds):
        bench = MultiKeyTestbench(bits)
        trace = Trace(bench.simulator,
                      [bench.core.round, bench.core.step])
        bench.load_key(bytes(bits // 8))
        start = bench.simulator.cycle
        bench.encrypt(bytes(16))
        values = trace.history("mk_round")[start:start + 5 * rounds]
        # Every round value dwells for exactly its 5 cycles.
        for rnd in range(1, rounds):
            window = values[(rnd - 1) * 5:(rnd - 1) * 5 + 4]
            assert all(v == rnd for v in window), (rnd, window)

    def test_schedule_position_advances_once_per_sub_cycle(self):
        bench = MultiKeyTestbench(192)
        trace = Trace(bench.simulator, [bench.core.sched_pos])
        bench.load_key(bytes(24))
        start = bench.simulator.cycle
        bench.encrypt(bytes(16))
        positions = trace.history("mk_sched_pos")[start:]
        # Monotone, steps of <= 1, ends exactly at the schedule end.
        diffs = [b - a for a, b in zip(positions, positions[1:])
                 if b != a]
        assert all(d == 1 for d in diffs)
        assert max(positions) == bench.core.total_words == 52

    def test_window_offset_invariant_holds_to_completion(self):
        # AES-256: the final rounds read at non-zero window offsets;
        # an assert inside _round_key guards the invariant — simply
        # completing proves it held every round.
        bench = MultiKeyTestbench(256)
        bench.load_key(bytes(32))
        _, latency = bench.encrypt(bytes(16))
        assert latency == 70


class TestPrecomputedSchedule:
    def test_expansion_pointer_walk(self, fips_key):
        bench = PrecomputedTestbench(128)
        trace = Trace(bench.simulator, [bench.core.expand_pos,
                                        bench.core.key_ready])
        bench.load_key(fips_key)
        positions = trace.history("pk_expand_pos")
        # The pointer walks 4..43 once, one step per cycle, then
        # holds at its final value.
        walk = [p for p in positions if p >= 4]
        deduped = [p for i, p in enumerate(walk)
                   if i == 0 or walk[i - 1] != p]
        assert deduped == list(range(4, 44))
        assert max(positions) == 43

    def test_key_ready_exactly_after_expansion(self, fips_key):
        bench = PrecomputedTestbench(128)
        trace = Trace(bench.simulator, [bench.core.key_ready])
        bench.load_key(fips_key)
        ready = trace.history("pk_key_ready")
        assert ready[-1] == 1
        # Ready rises exactly once, at the end.
        assert sum(
            1 for a, b in zip(ready, ready[1:]) if b > a
        ) == 1

    def test_no_data_ok_during_expansion(self, fips_key):
        bench = PrecomputedTestbench(128)
        trace = Trace(bench.simulator, [bench.core.data_ok])
        bench.load_key(fips_key)
        assert sum(trace.history("pk_data_ok")) == 0

    @pytest.mark.parametrize("variant", [Variant.ENCRYPT,
                                         Variant.BOTH])
    def test_five_cycle_staircase(self, variant, fips_key,
                                  fips_plaintext):
        bench = PrecomputedTestbench(128, variant)
        trace = Trace(bench.simulator, [bench.core.step])
        bench.load_key(fips_key)
        start = bench.simulator.cycle
        bench.encrypt(fips_plaintext)
        steps = trace.history("pk_step")[start:start + 50]
        for i in range(0, 45, 5):
            assert steps[i:i + 5] == [0, 1, 2, 3, 4], (i, steps[i:i+5])
