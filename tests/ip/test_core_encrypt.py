"""Cycle-accurate encrypt-only core vs the golden model."""

import pytest

from repro.aes.cipher import AES128
from repro.aes.vectors import ALL_VECTORS
from repro.ip.control import Phase, Variant
from repro.ip.testbench import Testbench
from tests.conftest import random_block, random_key


class TestKnownAnswers:
    def test_fips_appendix_b(self, encrypt_bench, fips_plaintext,
                             fips_ciphertext):
        result, latency = encrypt_bench.encrypt(fips_plaintext)
        assert result == fips_ciphertext
        assert latency == 50

    @pytest.mark.parametrize(
        "vector",
        [v for v in ALL_VECTORS if len(v.key) == 16],
        ids=lambda v: v.name,
    )
    def test_aes128_vectors(self, vector):
        bench = Testbench(Variant.ENCRYPT)
        bench.load_key(vector.key)
        result, _ = bench.encrypt(vector.plaintext)
        assert result == vector.ciphertext


class TestLatencyContract:
    def test_latency_is_exactly_fifty(self, encrypt_bench):
        for _ in range(3):
            _, latency = encrypt_bench.encrypt(bytes(16))
            assert latency == 50

    def test_latency_independent_of_data(self, encrypt_bench, rng):
        latencies = {
            encrypt_bench.encrypt(random_block(rng))[1] for _ in range(5)
        }
        assert latencies == {50}

    def test_data_ok_is_one_cycle_pulse(self, encrypt_bench):
        encrypt_bench.write_block(bytes(16))
        encrypt_bench.simulator.run_until(
            lambda: encrypt_bench.core.data_ok.value == 1, 100
        )
        encrypt_bench.simulator.step()
        assert encrypt_bench.core.data_ok.value == 0

    def test_output_register_holds_after_pulse(self, encrypt_bench,
                                               fips_plaintext,
                                               fips_ciphertext):
        encrypt_bench.encrypt(fips_plaintext)
        encrypt_bench.simulator.step(10)
        assert encrypt_bench.core.out_block() == fips_ciphertext


class TestAgainstGoldenModel:
    def test_random_blocks_match(self, rng):
        key = random_key(rng)
        bench = Testbench(Variant.ENCRYPT)
        bench.load_key(key)
        golden = AES128(key)
        for _ in range(8):
            block = random_block(rng)
            result, _ = bench.encrypt(block)
            assert result == golden.encrypt_block(block)

    def test_key_change_takes_effect(self, rng):
        bench = Testbench(Variant.ENCRYPT)
        block = bytes(range(16))
        key1, key2 = random_key(rng), random_key(rng)
        bench.load_key(key1)
        first, _ = bench.encrypt(block)
        bench.load_key(key2)
        second, _ = bench.encrypt(block)
        assert first == AES128(key1).encrypt_block(block)
        assert second == AES128(key2).encrypt_block(block)
        assert first != second

    def test_zero_key_default(self):
        # Without wr_key the key register holds zeros — a legal key.
        bench = Testbench(Variant.ENCRYPT)
        result, _ = bench.encrypt(bytes(16))
        assert result == AES128(bytes(16)).encrypt_block(bytes(16))


class TestVariantRestrictions:
    def test_encrypt_only_has_no_inverse_sbox(self):
        bench = Testbench(Variant.ENCRYPT)
        assert bench.core.sbox_f is not None
        assert bench.core.sbox_i is None

    def test_encrypt_only_rom_bits(self):
        # 4 data S-boxes + 4 KStran S-boxes = 16384 bits (Table 2).
        assert Testbench(Variant.ENCRYPT).core.rom_bits == 16384

    def test_encdec_pin_ignored(self, encrypt_bench, fips_plaintext,
                                fips_ciphertext):
        # Driving the (nonexistent on this device) direction pin high
        # must still encrypt.
        result, _ = encrypt_bench.process_block(fips_plaintext,
                                                direction=1)
        assert result == fips_ciphertext

    def test_key_load_is_instant(self, rng):
        # No setup pass on the encrypt-only device: ready next cycle.
        bench = Testbench(Variant.ENCRYPT)
        cycles = bench.load_key(random_key(rng))
        assert cycles == 1
        assert not bench.core.busy


class TestFsmObservability:
    def test_phase_transitions(self, encrypt_bench):
        core = encrypt_bench.core
        assert core.phase is Phase.IDLE
        encrypt_bench.write_block(bytes(16))
        assert core.phase is Phase.RUN
        encrypt_bench.wait_result()
        assert core.phase is Phase.IDLE

    def test_blocks_processed_counter(self, encrypt_bench):
        assert encrypt_bench.core.blocks_processed == 0
        encrypt_bench.encrypt(bytes(16))
        encrypt_bench.encrypt(bytes(16))
        assert encrypt_bench.core.blocks_processed == 2

    def test_busy_during_run(self, encrypt_bench):
        encrypt_bench.write_block(bytes(16))
        assert encrypt_bench.core.busy
        encrypt_bench.simulator.step(25)
        assert encrypt_bench.core.busy
        encrypt_bench.wait_result()
        assert not encrypt_bench.core.busy
