"""Tests for the on-the-fly key schedule unit against the golden model."""

import pytest

from repro.aes.key_schedule import expand_key, kstran
from repro.ip.keysched_unit import KeyScheduleUnit, rot_word_hw
from repro.rtl.simulator import Simulator


def make_unit():
    sim = Simulator()
    unit = KeyScheduleUnit()
    sim.adopt(unit.registers)
    return sim, unit


def load_words(sim, unit, words):
    unit.load_key(words)
    unit.load_work(words)
    sim.step()


class TestPlumbing:
    def test_rot_word_hw(self):
        assert rot_word_hw(0x01020304) == 0x02030401

    def test_rom_bits(self):
        # KStran owns its own 4 S-boxes (paper §3): 8192 bits.
        assert KeyScheduleUnit().rom_bits == 8192

    def test_register_inventory(self):
        unit = KeyScheduleUnit()
        # key0, key_last, work, build = 4 banks of 4 words.
        assert len(unit.registers) == 16

    def test_kstran_now_matches_golden(self):
        unit = KeyScheduleUnit()
        for word in (0x09CF4F3C, 0x00000000, 0xFFFFFFFF):
            for rnd in (1, 5, 10):
                assert unit.kstran_now(word, rnd) == kstran(word, rnd)

    def test_load_key_latches_on_edge(self):
        sim, unit = make_unit()
        unit.load_key((1, 2, 3, 4))
        assert unit.key0_words() == (0, 0, 0, 0)
        sim.step()
        assert unit.key0_words() == (1, 2, 3, 4)


class TestForwardStepping:
    def test_full_forward_schedule(self, fips_key):
        sim, unit = make_unit()
        words = tuple(
            int.from_bytes(fips_key[4 * i : 4 * i + 4], "big")
            for i in range(4)
        )
        load_words(sim, unit, words)
        expanded = expand_key(fips_key, 10)
        for rnd in range(1, 11):
            committed = None
            for index in range(4):
                value = unit.step_forward(index, rnd)
                if index == 3:
                    committed = unit.commit_build(value, 3)
                sim.step()
            assert list(committed) == expanded[4 * rnd : 4 * rnd + 4]
            assert unit.work_words() == committed

    def test_word0_needs_kstran(self, fips_key):
        sim, unit = make_unit()
        words = tuple(
            int.from_bytes(fips_key[4 * i : 4 * i + 4], "big")
            for i in range(4)
        )
        load_words(sim, unit, words)
        expected = words[0] ^ kstran(words[3], 1)
        assert unit.forward_word(0, 1) == expected

    def test_explicit_kstran_value_honored(self):
        sim, unit = make_unit()
        load_words(sim, unit, (5, 6, 7, 8))
        assert unit.forward_word(0, 1, kstran_value=0) == 5


class TestReverseStepping:
    def test_full_reverse_schedule(self, fips_key):
        sim, unit = make_unit()
        expanded = expand_key(fips_key, 10)
        last = tuple(expanded[40:44])
        load_words(sim, unit, last)
        for rnd in range(10, 0, -1):
            for slot in range(4):
                index, value = unit.step_reverse(slot, rnd)
                if slot == 3:
                    committed = unit.commit_build(value, index)
                sim.step()
            assert list(committed) == expanded[4 * (rnd - 1) : 4 * rnd]
            assert unit.work_words() == committed

    def test_reverse_word_order_is_3_2_1_0(self, fips_key):
        sim, unit = make_unit()
        load_words(sim, unit, (10, 20, 30, 40))
        assert unit.reverse_word(0, 1)[0] == 3
        assert unit.reverse_word(1, 1)[0] == 2
        assert unit.reverse_word(2, 1)[0] == 1

    def test_reverse_slot_range(self):
        _, unit = make_unit()
        with pytest.raises(ValueError):
            unit.reverse_word(4, 1)

    def test_reverse_recovers_key0(self, fips_key):
        """Running the reverse schedule all the way down must land on
        the original cipher key — the invariant that makes decryption's
        final Add Key correct."""
        sim, unit = make_unit()
        expanded = expand_key(fips_key, 10)
        load_words(sim, unit, tuple(expanded[40:44]))
        for rnd in range(10, 0, -1):
            for slot in range(4):
                index, value = unit.step_reverse(slot, rnd)
                if slot == 3:
                    unit.commit_build(value, index)
                sim.step()
        key_words = tuple(
            int.from_bytes(fips_key[4 * i : 4 * i + 4], "big")
            for i in range(4)
        )
        assert unit.work_words() == key_words


class TestLastKeyLatch:
    def test_latch_last(self):
        sim, unit = make_unit()
        unit.latch_last((9, 8, 7, 6))
        sim.step()
        assert unit.key_last_words() == (9, 8, 7, 6)
