"""The synchronous-ROM build (the paper's future-work variant).

Cyclone block RAM cannot read asynchronously, so the paper implemented
the S-boxes in logic cells and deferred a registered-ROM redesign to
future work ("To allow the use of synchronous ROM, several
modifications are needed").  This build is that redesign: ROM reads
are pipelined, the round stretches from 5 to 6 cycles and the key
setup pass from 40 to 50.
"""


from repro.aes.cipher import AES128
from repro.ip.control import Variant, block_latency, key_setup_cycles
from repro.ip.testbench import Testbench
from tests.conftest import random_block, random_key


class TestFunctionalEquivalence:
    def test_encrypt_matches_golden(self, rng):
        key = random_key(rng)
        bench = Testbench(Variant.ENCRYPT, sync_rom=True)
        bench.load_key(key)
        golden = AES128(key)
        for _ in range(4):
            block = random_block(rng)
            result, _ = bench.encrypt(block)
            assert result == golden.encrypt_block(block)

    def test_decrypt_matches_golden(self, rng):
        key = random_key(rng)
        bench = Testbench(Variant.DECRYPT, sync_rom=True)
        bench.load_key(key)
        golden = AES128(key)
        for _ in range(4):
            ct = random_block(rng)
            result, _ = bench.decrypt(ct)
            assert result == golden.decrypt_block(ct)

    def test_both_variant_round_trip(self, rng):
        key = random_key(rng)
        bench = Testbench(Variant.BOTH, sync_rom=True)
        bench.load_key(key)
        block = random_block(rng)
        ct, _ = bench.encrypt(block)
        pt, _ = bench.decrypt(ct)
        assert pt == block

    def test_fips_vector(self, fips_key, fips_plaintext,
                         fips_ciphertext):
        bench = Testbench(Variant.ENCRYPT, sync_rom=True)
        bench.load_key(fips_key)
        result, _ = bench.encrypt(fips_plaintext)
        assert result == fips_ciphertext


class TestTimingContract:
    def test_latency_is_sixty(self, rng):
        bench = Testbench(Variant.BOTH, sync_rom=True)
        bench.load_key(random_key(rng))
        _, enc = bench.encrypt(bytes(16))
        _, dec = bench.decrypt(bytes(16))
        assert enc == dec == block_latency(sync_rom=True) == 60

    def test_setup_pass_is_fifty(self, fips_key):
        bench = Testbench(Variant.DECRYPT, sync_rom=True)
        consumed = bench.load_key(fips_key)
        assert consumed == 1 + key_setup_cycles(sync_rom=True) == 51

    def test_streaming_period_is_sixty(self, rng):
        key = random_key(rng)
        bench = Testbench(Variant.ENCRYPT, sync_rom=True)
        bench.load_key(key)
        blocks = [random_block(rng) for _ in range(4)]
        results, stamps = bench.stream_blocks(blocks)
        assert results == [AES128(key).encrypt_block(b) for b in blocks]
        assert all(b - a == 60 for a, b in zip(stamps, stamps[1:]))

    def test_sync_units_have_pipeline_registers(self):
        core = Testbench(Variant.ENCRYPT, sync_rom=True).core
        assert core.sbox_f is not None
        assert len(core.sbox_f.registers) == 1
        assert len(core.keyunit.sbox.registers) == 1


class TestCrossBuildEquivalence:
    def test_async_and_sync_produce_identical_ciphertext(self, rng):
        key = random_key(rng)
        fast = Testbench(Variant.ENCRYPT, sync_rom=False)
        slow = Testbench(Variant.ENCRYPT, sync_rom=True)
        fast.load_key(key)
        slow.load_key(key)
        for _ in range(3):
            block = random_block(rng)
            a, la = fast.encrypt(block)
            b, lb = slow.encrypt(block)
            assert a == b
            assert (la, lb) == (50, 60)
