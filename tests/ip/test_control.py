"""Tests for control/timing constants (paper §4 cycle arithmetic)."""


from repro.ip.control import (
    NUM_ROUNDS,
    Variant,
    all_32bit_cycles_per_round,
    block_latency,
    cycles_per_round,
    key_setup_cycles,
)


class TestVariant:
    def test_encrypt_capabilities(self):
        assert Variant.ENCRYPT.can_encrypt
        assert not Variant.ENCRYPT.can_decrypt
        assert not Variant.ENCRYPT.needs_setup_pass

    def test_decrypt_capabilities(self):
        assert not Variant.DECRYPT.can_encrypt
        assert Variant.DECRYPT.can_decrypt
        assert Variant.DECRYPT.needs_setup_pass

    def test_both_capabilities(self):
        assert Variant.BOTH.can_encrypt
        assert Variant.BOTH.can_decrypt
        assert Variant.BOTH.needs_setup_pass

    def test_values_match_paper_terms(self):
        assert {v.value for v in Variant} == {
            "encrypt", "decrypt", "both",
        }


class TestCycleArithmetic:
    def test_paper_round_is_five_cycles(self):
        # §4: "decreasing the number of clock cycles needed to execute
        # a round from 12 ... to 5".
        assert cycles_per_round(sync_rom=False) == 5

    def test_all_32bit_baseline_is_twelve(self):
        assert all_32bit_cycles_per_round() == 12

    def test_block_latency_is_fifty(self):
        # 10 rounds x 5 cycles: the number behind every latency row of
        # Table 2 (700 ns = 50 x 14 ns, etc.).
        assert NUM_ROUNDS == 10
        assert block_latency() == 50

    def test_sync_rom_round_is_six_cycles(self):
        assert cycles_per_round(sync_rom=True) == 6
        assert block_latency(sync_rom=True) == 60

    def test_key_setup_pass_lengths(self):
        assert key_setup_cycles() == 40
        assert key_setup_cycles(sync_rom=True) == 50

    def test_latency_consistent_with_paper_table2(self):
        # latency_ns = 50 * clk for every Table 2 row.
        for clk, latency in [(14, 700), (15, 750), (17, 850),
                             (10, 500), (11, 550), (13, 650)]:
            assert block_latency() * clk == latency
