"""Tests for the 4-S-box substitution unit."""

import pytest

from repro.aes.constants import INV_SBOX, SBOX
from repro.ip.sbox_unit import LANES, UNIT_ROM_BITS, SboxRom, SubWordUnit
from repro.rtl.simulator import Simulator


class TestSboxRom:
    def test_forward_table(self):
        rom = SboxRom()
        assert rom.read(0x53) == SBOX[0x53]

    def test_inverse_table(self):
        rom = SboxRom(inverse=True)
        assert rom.read(SBOX[0x53]) == 0x53
        assert rom.read(0x00) == INV_SBOX[0x00]

    def test_capacity(self):
        # Paper §3: one S-box is 2048 bits.
        assert SboxRom().bits == 2048

    def test_address_checked(self):
        with pytest.raises(ValueError):
            SboxRom().read(256)


class TestAsyncUnit:
    def test_unit_geometry(self):
        unit = SubWordUnit("u")
        assert LANES == 4
        assert unit.rom_bits == UNIT_ROM_BITS == 8192

    def test_lookup_substitutes_each_lane(self):
        unit = SubWordUnit("u")
        word = 0x00531FFF
        expected = (
            (SBOX[0x00] << 24) | (SBOX[0x53] << 16)
            | (SBOX[0x1F] << 8) | SBOX[0xFF]
        )
        assert unit.lookup(word) == expected

    def test_inverse_unit_round_trip(self):
        fwd = SubWordUnit("f")
        inv = SubWordUnit("i", inverse=True)
        for word in (0x00000000, 0xDEADBEEF, 0xFFFFFFFF, 0x01234567):
            assert inv.lookup(fwd.lookup(word)) == word

    def test_lookup_range_checked(self):
        with pytest.raises(ValueError):
            SubWordUnit("u").lookup(1 << 32)

    def test_async_has_no_registers(self):
        assert SubWordUnit("u").registers == ()

    def test_async_rejects_clocked_api(self):
        unit = SubWordUnit("u")
        with pytest.raises(RuntimeError):
            unit.clock_read(0)
        with pytest.raises(RuntimeError):
            unit.registered_output


class TestSyncUnit:
    def test_sync_rejects_combinational_api(self):
        unit = SubWordUnit("u", sync_rom=True)
        with pytest.raises(RuntimeError):
            unit.lookup(0)

    def test_sync_read_takes_one_cycle(self):
        sim = Simulator()
        unit = SubWordUnit("u", sync_rom=True)
        sim.adopt(unit.registers)
        sim.add_clocked(lambda: None)
        unit.clock_read(0x53535353)
        assert unit.registered_output == 0  # not yet
        sim.step()
        expected = int.from_bytes(bytes([SBOX[0x53]] * 4), "big")
        assert unit.registered_output == expected

    def test_sync_owns_one_register(self):
        unit = SubWordUnit("u", sync_rom=True)
        assert len(unit.registers) == 1
        assert unit.registers[0].width == 32

    def test_sync_pipeline_behaviour(self):
        # Back-to-back reads: output always lags address by one edge.
        sim = Simulator()
        unit = SubWordUnit("u", sync_rom=True)
        sim.adopt(unit.registers)
        addresses = [0x00000000, 0x11111111, 0xFFFFFFFF]
        outputs = []

        def drive():
            if sim.cycle < len(addresses):
                unit.clock_read(addresses[sim.cycle])

        sim.add_clocked(drive)
        for _ in range(4):
            sim.step()
            outputs.append(unit.registered_output)
        fwd = SubWordUnit("ref")
        assert outputs[0] == fwd.lookup(addresses[0])
        assert outputs[1] == fwd.lookup(addresses[1])
        assert outputs[2] == fwd.lookup(addresses[2])
