"""Docs <-> code consistency: DESIGN.md's experiment index and
EXPERIMENTS.md's bench references must point at files that exist, and
the numbers the README prints must match the model."""

import re
from pathlib import Path


REPO = Path(__file__).resolve().parent.parent


def referenced_bench_files(text: str):
    return set(re.findall(r"`(?:benchmarks/)?(test_\w+\.py)`", text))


class TestDesignIndex:
    DESIGN = (REPO / "DESIGN.md").read_text()

    def test_identity_check_present(self):
        assert "Paper identity check" in self.DESIGN

    def test_every_indexed_bench_exists(self):
        benches = referenced_bench_files(self.DESIGN)
        assert benches, "DESIGN.md index references no benches?"
        missing = [
            b for b in benches
            if not (REPO / "benchmarks" / b).exists()
        ]
        assert not missing, missing

    def test_every_module_in_inventory_exists(self):
        # Paths like `fpga/timing.py` or ip/buswrap.py in the map.
        modules = set(re.findall(r"(\w+(?:/\w+)+\.py)", self.DESIGN))
        missing = [
            m for m in modules
            if not (REPO / "src" / "repro" / m).exists()
            and not (REPO / m).exists()
        ]
        assert not missing, missing

    def test_substitution_table_present(self):
        assert "Paper used" in self.DESIGN
        assert "ModelSim" in self.DESIGN


class TestExperimentsRecord:
    EXPERIMENTS = (REPO / "EXPERIMENTS.md").read_text()

    def test_every_referenced_bench_exists(self):
        benches = referenced_bench_files(self.EXPERIMENTS)
        missing = [
            b for b in benches
            if not (REPO / "benchmarks" / b).exists()
            and not list(REPO.glob(f"tests/**/{b}"))
        ]
        assert not missing, missing

    def test_table2_cells_match_model(self):
        """The measured numbers written in EXPERIMENTS.md must match
        what the model produces today."""
        from repro.analysis.tables import table2_comparison

        for row in table2_comparison():
            token = f"{row['model_lcs']}"
            assert token in self.EXPERIMENTS, (
                f"EXPERIMENTS.md is stale: {row['design']}/"
                f"{row['family']} now models {row['model_lcs']} LCs"
            )

    def test_lost_cells_documented(self):
        assert "corrupted" in self.EXPERIMENTS
        assert "[14]" in self.EXPERIMENTS


class TestReadme:
    README = (REPO / "README.md").read_text()

    def test_headline_table_matches_model(self):
        from repro.analysis.tables import table2_comparison

        for row in table2_comparison():
            assert str(row["model_lcs"]) in self.README, (
                f"README table stale for {row['design']}/"
                f"{row['family']}"
            )

    def test_mentions_all_deliverable_dirs(self):
        for path in ("src/repro", "tests/", "benchmarks/", "examples/",
                     "DESIGN.md", "EXPERIMENTS.md"):
            assert path in self.README

    def test_quickstart_snippet_is_valid(self):
        # Execute the README's quickstart code block.
        match = re.search(r"```python\n(.*?)```", self.README,
                          re.DOTALL)
        assert match
        exec(compile(match.group(1), "README-quickstart", "exec"), {})


class TestBenchCoverage:
    def test_every_paper_table_and_figure_has_a_bench(self):
        benches = {p.name for p in (REPO / "benchmarks").glob("*.py")}
        for table in (1, 2, 3):
            assert any(f"table{table}" in b for b in benches), table
        for figure in range(1, 10):
            assert any(f"fig{figure}" in b for b in benches), figure


class TestServingDocsPinProtocol:
    """docs/serving.md documents the wire constants; they must match
    protocol.py, and the model checker's extraction must agree —
    three-way consistency (docs = source = extracted model)."""

    SERVING = (REPO / "docs" / "serving.md").read_text()

    def test_magic_documented(self):
        from repro.serve.protocol import MAGIC
        assert MAGIC == b"RJ"
        assert '"RJ"' in self.SERVING

    def test_version_documented(self):
        from repro.serve.protocol import VERSION
        assert f"currently {VERSION}" in self.SERVING

    def test_max_payload_documented(self):
        from repro.serve.protocol import MAX_PAYLOAD_BYTES
        assert MAX_PAYLOAD_BYTES == 1 << 20
        assert "1 MiB" in self.SERVING

    def test_header_size_documented(self):
        from repro.serve.protocol import HEADER_BYTES
        assert f"{HEADER_BYTES}-byte header" in self.SERVING

    def test_gcm_cap_documented(self):
        from repro.serve.protocol import GCM_TAG_BYTES
        assert (f"MAX_PAYLOAD_BYTES − {GCM_TAG_BYTES}"
                in self.SERVING)

    def test_extracted_model_agrees_with_source(self):
        from repro.checks.proto import run_proto
        from repro.serve import protocol

        model = run_proto(str(REPO)).analysis.model
        assert model is not None
        assert model.magic == protocol.MAGIC
        assert model.version == protocol.VERSION
        assert model.header_bytes == protocol.HEADER_BYTES
        assert model.max_payload == protocol.MAX_PAYLOAD_BYTES
        assert model.max_frame == protocol.MAX_FRAME_BYTES

    def test_proven_invariants_section_present(self):
        assert "Proven protocol invariants" in self.SERVING
        assert "desync-deadlock" in self.SERVING

    def test_zero_copy_codec_documented(self):
        assert "Zero-copy codec" in self.SERVING
        for name in ("encode_frame_views", "decode_payload",
                     "write_frame", "serve.codec-copy"):
            assert name in self.SERVING, name


class TestUsageDocsPinBackends:
    """docs/usage.md's backend/provider matrix and bench schema must
    track the registries and the persisted schema string."""

    USAGE = (REPO / "docs" / "usage.md").read_text()

    def test_backend_matrix_names_registry(self):
        # Every selectable backend name appears in the docs, whether
        # or not it registers on this host (evp is host-dependent).
        for name in ("baseline", "ttable", "sliced", "evp"):
            assert f"`{name}`" in self.USAGE, name

    def test_ghash_providers_documented(self):
        from repro.aes.ghash import available_providers
        for name in available_providers():
            assert f"`{name}`" in self.USAGE, name
        assert "`auto`" in self.USAGE

    def test_bench_schema_documented(self):
        from repro.perf.bench import SCHEMA
        assert SCHEMA in self.USAGE

    def test_ghash_flags_documented(self):
        assert "--no-ghash" in self.USAGE
        assert "--ghash" in self.USAGE
